package shard

import (
	"fmt"
	"testing"

	"clobbernvm/internal/clobber"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
)

const (
	testPoolBytes = 1 << 23
	testSlots     = 4
	testRootSlot  = 12
	testDataCap   = 1 << 20
)

// newTestShard provisions one independent persistence domain with a clobber
// engine and a hashmap anchored at testRootSlot.
func newTestShard(t *testing.T) (*Shard, pds.Store) {
	t.Helper()
	pool := nvm.New(testPoolBytes, nvm.WithLatency(nvm.DefaultLatency))
	pool.Prefault()
	pool.SetFastPath(true)
	alloc, err := pmem.Create(pool)
	if err != nil {
		t.Fatalf("pmem.Create: %v", err)
	}
	eng, err := clobber.Create(pool, alloc, clobber.Options{Slots: testSlots, DataLogCap: testDataCap})
	if err != nil {
		t.Fatalf("clobber.Create: %v", err)
	}
	st, err := pds.NewHashMap(eng, testRootSlot)
	if err != nil {
		t.Fatalf("NewHashMap: %v", err)
	}
	return &Shard{Pool: pool, Alloc: alloc, Engine: eng}, st
}

// reattachShard rebuilds a shard from a durable pool image — the restart
// half of newTestShard.
func reattachShard(t *testing.T, img []byte) (*Shard, pds.Store) {
	t.Helper()
	pool, err := nvm.NewFromImage(img, nvm.WithLatency(nvm.DefaultLatency))
	if err != nil {
		t.Fatalf("NewFromImage: %v", err)
	}
	pool.Prefault()
	pool.SetFastPath(true)
	alloc, err := pmem.Attach(pool)
	if err != nil {
		t.Fatalf("pmem.Attach: %v", err)
	}
	eng, err := clobber.Attach(pool, alloc, clobber.Options{})
	if err != nil {
		t.Fatalf("clobber.Attach: %v", err)
	}
	st, err := pds.NewHashMap(eng, testRootSlot)
	if err != nil {
		t.Fatalf("reattach NewHashMap: %v", err)
	}
	return &Shard{Pool: pool, Alloc: alloc, Engine: eng}, st
}

// populate routes nKeys keys through the set and inserts each into its
// owning shard's store. Returns key -> owning shard.
func populate(t *testing.T, set *Set, stores []pds.Store, nKeys int) map[string]int {
	t.Helper()
	owners := make(map[string]int, nKeys)
	for i := 0; i < nKeys; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		s := set.ShardOf(key)
		if err := stores[s].Insert(0, key, []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatalf("insert %q on shard %d: %v", key, s, err)
		}
		owners[string(key)] = s
	}
	return owners
}

// TestRecoverAllMergesReports restarts a populated 4-shard set and checks
// the merged report aggregates every shard: Slots sums to 4x the per-shard
// slot count, PerShard and PerShardNS are index-aligned, and every key is
// readable afterwards.
func TestRecoverAllMergesReports(t *testing.T) {
	const n = 4
	shards := make([]*Shard, n)
	stores := make([]pds.Store, n)
	for i := range shards {
		shards[i], stores[i] = newTestShard(t)
	}
	set := NewSet(shards)
	owners := populate(t, set, stores, 200)

	// Simulated whole-process restart: every shard comes back from its
	// coherent image and recovers.
	for i := range shards {
		img := shards[i].Pool.CoherentSnapshot()
		shards[i], stores[i] = reattachShard(t, img)
		set.Replace(i, shards[i])
	}
	rep, err := set.RecoverAll(0)
	if err != nil {
		t.Fatalf("RecoverAll: %v", err)
	}
	if rep.Merged.Slots != n*testSlots {
		t.Errorf("merged Slots = %d, want %d", rep.Merged.Slots, n*testSlots)
	}
	if len(rep.PerShard) != n || len(rep.PerShardNS) != n {
		t.Fatalf("per-shard lengths = %d/%d, want %d", len(rep.PerShard), len(rep.PerShardNS), n)
	}
	for i, ns := range rep.PerShardNS {
		if ns <= 0 {
			t.Errorf("shard %d recovery time not recorded", i)
		}
	}
	if rep.Workers < 1 || rep.Workers > n {
		t.Errorf("workers = %d, want 1..%d", rep.Workers, n)
	}
	if len(rep.Merged.Errors) != 0 {
		t.Errorf("merged errors: %v", rep.Merged.Errors)
	}
	for key, s := range owners {
		v, ok, err := stores[s].Get(0, []byte(key))
		if err != nil || !ok {
			t.Fatalf("after recovery: Get(%q) on shard %d = ok=%v err=%v", key, s, ok, err)
		}
		want := "val-" + key[len("key-"):]
		if string(v) != want {
			t.Fatalf("after recovery: %q = %q, want %q", key, v, want)
		}
	}
}

// TestSingleShardCrashIsolation crashes one shard's pool and checks the
// blast radius: the other shards keep serving reads and writes untouched
// (no drain, no rebuild), and only the victim needs the image-rebuild +
// recovery path before rejoining.
func TestSingleShardCrashIsolation(t *testing.T) {
	const n = 4
	shards := make([]*Shard, n)
	stores := make([]pds.Store, n)
	for i := range shards {
		shards[i], stores[i] = newTestShard(t)
	}
	set := NewSet(shards)
	owners := populate(t, set, stores, 200)

	// Crash the victim the way production does: injection fires mid-write and
	// the sticky latch makes every later access panic with ErrCrash.
	const victim = 1
	shards[victim].Pool.ScheduleCrash(1)
	func() {
		defer func() {
			if r := recover(); r != nvm.ErrCrash {
				t.Errorf("victim access panicked with %v, want ErrCrash", r)
			}
		}()
		stores[victim].Insert(0, []byte("post-crash"), []byte("x"))
		t.Error("victim accepted a write after crash")
	}()
	if !shards[victim].Pool.Crashed() {
		t.Fatal("victim pool not latched after scheduled crash")
	}

	// Survivors never stopped: reads and new writes succeed with the victim
	// still down.
	for key, s := range owners {
		if s == victim {
			continue
		}
		if _, ok, err := stores[s].Get(0, []byte(key)); err != nil || !ok {
			t.Fatalf("survivor shard %d lost %q during victim crash: ok=%v err=%v", s, key, ok, err)
		}
	}
	for s := 0; s < n; s++ {
		if s == victim {
			continue
		}
		if err := stores[s].Insert(0, []byte(fmt.Sprintf("live-%d", s)), []byte("y")); err != nil {
			t.Fatalf("survivor shard %d rejected a write during victim crash: %v", s, err)
		}
	}

	// Recover only the victim from its durable image and swap it back in.
	img := shards[victim].Pool.Snapshot()
	sh, st := reattachShard(t, img)
	if _, err := recoverEngine(sh.Engine); err != nil {
		t.Fatalf("victim recovery: %v", err)
	}
	set.Replace(victim, sh)
	stores[victim] = st

	// The victim's pre-crash durable keys are back; routing is unchanged, so
	// every key still lands on the shard that owns it.
	for key, s := range owners {
		if s != victim {
			continue
		}
		if _, ok, err := stores[victim].Get(0, []byte(key)); err != nil || !ok {
			t.Fatalf("victim lost durable key %q across crash+recover: ok=%v err=%v", key, ok, err)
		}
	}
	if got := set.ShardOf([]byte("key-00000")); got != owners["key-00000"] {
		t.Errorf("routing changed across recovery: key-00000 now -> %d", got)
	}
}

// TestRecoverAllWorkerClamp pins the worker-pool sizing rules.
func TestRecoverAllWorkerClamp(t *testing.T) {
	shards := make([]*Shard, 3)
	for i := range shards {
		shards[i], _ = newTestShard(t)
	}
	set := NewSet(shards)
	rep, err := set.RecoverAll(100) // > N clamps to N (then to GOMAXPROCS)
	if err != nil {
		t.Fatalf("RecoverAll: %v", err)
	}
	if rep.Workers > 3 {
		t.Errorf("workers = %d, want <= 3", rep.Workers)
	}
	rep, err = set.RecoverAll(1)
	if err != nil {
		t.Fatalf("RecoverAll(1): %v", err)
	}
	if rep.Workers != 1 {
		t.Errorf("workers = %d, want 1", rep.Workers)
	}
}
