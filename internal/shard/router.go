// Package shard partitions the persistent heap into N fully independent
// persistence domains. Each shard owns its own simulated pool, allocator,
// logging engine, group-commit epoch and obs counters, so nothing — not a
// stripe lock, not an allocator journal, not a commit fence — is shared
// between transactions that land on different shards. "Persistence and
// Synchronization: Friends or Foes?" (PAPERS.md) measures why this matters:
// persistence costs interact badly with shared synchronization, so per-shard
// isolation is the scaling unlock for both commit throughput and recovery,
// turning them from O(pool) into O(pool/N).
//
// Keys are routed to shards by consistent hashing (Router), so adding a
// shard moves only ~1/(N+1) of the keyspace, and a crash in one shard is
// recovered — in parallel with the others still serving — without touching
// any other shard's pool (Set.RecoverAll, memcache.ShardedBackend).
package shard

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the number of virtual nodes each shard places on the
// hash ring. 128 points per shard keeps the maximum shard occupancy within
// a few percent of the mean at realistic shard counts while the ring stays
// small enough that routing is one binary search over a few KiB.
const DefaultVnodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash ring owned
// by a shard.
type ringPoint struct {
	hash  uint64
	shard int32
}

// Router maps keys onto shards with consistent hashing. Immutable after
// construction; safe for concurrent use.
type Router struct {
	points []ringPoint // sorted by hash
	shards int
}

// NewRouter builds a router over n shards with DefaultVnodes virtual nodes
// per shard. n < 1 is treated as 1.
func NewRouter(n int) *Router { return NewRouterVnodes(n, DefaultVnodes) }

// NewRouterVnodes builds a router with an explicit virtual-node count
// (tests shrink it to provoke imbalance).
func NewRouterVnodes(n, vnodes int) *Router {
	if n < 1 {
		n = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Router{shards: n}
	if n == 1 {
		return r // every key routes to shard 0; no ring needed
	}
	r.points = make([]ringPoint, 0, n*vnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			h := hash64([]byte(fmt.Sprintf("shard-%d-vnode-%d", s, v)))
			r.points = append(r.points, ringPoint{hash: h, shard: int32(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare but possible) break by shard id so
		// the ring order — and therefore key placement — is deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the router distributes over.
func (r *Router) Shards() int { return r.shards }

// ShardOf returns the shard index for key: the owner of the first virtual
// node at or after the key's position on the ring (wrapping at the top).
func (r *Router) ShardOf(key []byte) int {
	if r.shards == 1 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].shard)
}

// hash64 is FNV-1a finished with a splitmix64-style avalanche. Plain FNV-1a
// (what the persistent structures use for bucket choice) has weak high-bit
// diffusion on short similar strings, which leaves correlated arcs on the
// ring and breaks the 1.5x-mean balance bound; the finalizer fixes the bit
// dispersion while the whole function stays a pure, process-independent
// function of the key bytes, so placement is reproducible across restarts
// and recovery re-executions.
func hash64(key []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
