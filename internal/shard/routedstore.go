package shard

import (
	"fmt"

	"clobbernvm/internal/pds"
)

// RoutedStore presents N per-shard instances of the same persistent
// structure as one pds.Store: every operation is dispatched to the shard
// owning the key, so callers written against a single store (benchmarks,
// crash sweeps, audits) run unchanged over a sharded backend.
type RoutedStore struct {
	set    *Set
	stores []pds.Store
}

var _ pds.Store = (*RoutedStore)(nil)

// NewRoutedStore wraps one store per shard, index-aligned with the set.
func NewRoutedStore(set *Set, stores []pds.Store) (*RoutedStore, error) {
	if len(stores) != set.N() {
		return nil, fmt.Errorf("shard: %d stores for %d shards", len(stores), set.N())
	}
	return &RoutedStore{set: set, stores: stores}, nil
}

// Store returns shard i's underlying store (the recovery path swaps these
// via ReplaceStore after rebuilding a shard).
func (r *RoutedStore) Store(i int) pds.Store { return r.stores[i] }

// ReplaceStore swaps shard i's store for a rebuilt incarnation. The caller
// must quiesce traffic to shard i around the swap.
func (r *RoutedStore) ReplaceStore(i int, st pds.Store) { r.stores[i] = st }

// Name implements pds.Store.
func (r *RoutedStore) Name() string { return r.stores[0].Name() }

// Insert implements pds.Store.
func (r *RoutedStore) Insert(slot int, key, value []byte) error {
	return r.stores[r.set.ShardOf(key)].Insert(slot, key, value)
}

// Get implements pds.Store.
func (r *RoutedStore) Get(slot int, key []byte) ([]byte, bool, error) {
	return r.stores[r.set.ShardOf(key)].Get(slot, key)
}

// Delete implements pds.Store.
func (r *RoutedStore) Delete(slot int, key []byte) (bool, error) {
	return r.stores[r.set.ShardOf(key)].Delete(slot, key)
}

// CheckInvariants implements pds.InvariantChecker by walking every shard's
// structure: the routed view is consistent only if each per-shard instance
// is, so audits written against one store check all N through this.
func (r *RoutedStore) CheckInvariants(slot int) error {
	for i, st := range r.stores {
		if err := pds.CheckInvariants(st, slot); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Len implements pds.Store: the population is the sum over shards.
func (r *RoutedStore) Len(slot int) (int, error) {
	total := 0
	for _, st := range r.stores {
		n, err := st.Len(slot)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
