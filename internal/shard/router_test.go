package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// uniformKeys returns n distinct pseudo-random keys.
func uniformKeys(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, 0, n)
	seen := map[uint64]bool{}
	for len(keys) < n {
		v := rng.Uint64()
		if seen[v] {
			continue
		}
		seen[v] = true
		keys = append(keys, []byte(fmt.Sprintf("u-%016x", v)))
	}
	return keys
}

// zipfKeys returns the distinct keys observed in n draws from a zipfian id
// distribution — the skewed keyspace shape of a hot-key workload. Occupancy
// is measured over distinct keys: placement balance is a property of where
// keys live, not of how often the workload touches them (a single hot key
// necessarily lives on one shard regardless of the router).
func zipfKeys(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, 1<<22)
	seen := map[uint64]bool{}
	var keys [][]byte
	for i := 0; i < n; i++ {
		v := z.Uint64()
		if seen[v] {
			continue
		}
		seen[v] = true
		keys = append(keys, []byte(fmt.Sprintf("z-%d", v)))
	}
	return keys
}

// TestRouterBalance checks the ISSUE's balance bar: over 1e5 uniform and
// zipfian keys, no shard holds more than 1.5x the mean occupancy.
func TestRouterBalance(t *testing.T) {
	const n = 100_000
	for _, shards := range []int{2, 4, 8, 16} {
		r := NewRouter(shards)
		for name, keys := range map[string][][]byte{
			"uniform": uniformKeys(n, 1),
			"zipfian": zipfKeys(n, 2),
		} {
			counts := make([]int, shards)
			for _, k := range keys {
				counts[r.ShardOf(k)]++
			}
			mean := float64(len(keys)) / float64(shards)
			for s, c := range counts {
				if float64(c) > 1.5*mean {
					t.Errorf("shards=%d %s: shard %d holds %d keys, > 1.5x mean %.0f (counts %v)",
						shards, name, s, c, mean, counts)
				}
				if c == 0 {
					t.Errorf("shards=%d %s: shard %d holds no keys", shards, name, s)
				}
			}
		}
	}
}

// TestRouterStability checks the consistent-hashing contract: growing the
// ring from N to N+1 shards moves at most 2/(N+1) of the keys (the ideal is
// 1/(N+1); the slack covers vnode placement randomness), and every moved key
// lands on the new shard — consistent hashing never shuffles keys between
// surviving shards.
func TestRouterStability(t *testing.T) {
	keys := uniformKeys(100_000, 3)
	for _, n := range []int{2, 4, 7, 8, 15} {
		old := NewRouter(n)
		grown := NewRouter(n + 1)
		moved := 0
		for _, k := range keys {
			a, b := old.ShardOf(k), grown.ShardOf(k)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d: key %q moved %d->%d, not to the new shard %d", n, k, a, b, n)
			}
		}
		frac := float64(moved) / float64(len(keys))
		if limit := 2.0 / float64(n+1); frac > limit {
			t.Errorf("n=%d->%d: %.3f of keys moved, limit %.3f", n, n+1, frac, limit)
		}
		if moved == 0 {
			t.Errorf("n=%d->%d: no keys moved — the new shard owns nothing", n, n+1)
		}
	}
}

// TestRouterDeterminism pins routing to be a pure function of (key, N).
func TestRouterDeterminism(t *testing.T) {
	a, b := NewRouter(8), NewRouter(8)
	for _, k := range uniformKeys(1000, 4) {
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("routing of %q differs between identically built routers", k)
		}
	}
}

// TestRouterSingleShard pins the N=1 fast path: everything routes to 0.
func TestRouterSingleShard(t *testing.T) {
	r := NewRouter(1)
	for _, k := range uniformKeys(100, 5) {
		if s := r.ShardOf(k); s != 0 {
			t.Fatalf("single-shard router sent %q to shard %d", k, s)
		}
	}
}
