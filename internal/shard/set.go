package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/txn"
)

// Shard is one independent persistence domain: its own pool (with its own
// cache model, persist-point counters and, if enabled, group-commit epoch),
// its own allocator (own journal, own arenas) and its own engine (own plog
// instances and transaction slots). Nothing in a Shard is shared with any
// other shard.
type Shard struct {
	Pool   *nvm.Pool
	Alloc  *pmem.Allocator
	Engine pds.Engine
}

// Set is N shards behind a consistent-hash router.
type Set struct {
	shards []*Shard
	router *Router
}

// NewSet assembles a set over already-constructed shards. The router is
// sized to len(shards).
func NewSet(shards []*Shard) *Set {
	return &Set{shards: shards, router: NewRouter(len(shards))}
}

// N returns the shard count.
func (s *Set) N() int { return len(s.shards) }

// Shard returns shard i.
func (s *Set) Shard(i int) *Shard { return s.shards[i] }

// Replace swaps shard i for a rebuilt incarnation (the post-crash recovery
// path). The caller must quiesce traffic to shard i around the swap.
func (s *Set) Replace(i int, sh *Shard) { s.shards[i] = sh }

// Router returns the set's key router.
func (s *Set) Router() *Router { return s.router }

// ShardOf returns the shard index owning key.
func (s *Set) ShardOf(key []byte) int { return s.router.ShardOf(key) }

// RecoveryReport is the merged outcome of recovering every shard.
type RecoveryReport struct {
	// Merged aggregates the per-shard engine reports counter by counter.
	Merged txn.RecoveryReport
	// PerShard holds each shard's own report, index-aligned with the set.
	PerShard []txn.RecoveryReport
	// PerShardNS is each shard's recovery wall time in isolation.
	PerShardNS []int64
	// WallNS is the whole RecoverAll wall time — with enough workers and
	// cores this approaches max(PerShardNS) rather than their sum.
	WallNS int64
	// Workers is the worker-pool size actually used.
	Workers int
}

// merge folds one per-shard report into the aggregate.
func (r *RecoveryReport) merge(rep txn.RecoveryReport) {
	r.Merged.Slots += rep.Slots
	r.Merged.Recovered += rep.Recovered
	r.Merged.Reexecuted += rep.Reexecuted
	r.Merged.RolledBack += rep.RolledBack
	r.Merged.RolledForward += rep.RolledForward
	r.Merged.FreesResumed += rep.FreesResumed
	r.Merged.Quarantined += rep.Quarantined
	r.Merged.Errors = append(r.Merged.Errors, rep.Errors...)
}

// recoverEngine prefers the hardened report-carrying recovery; the legacy
// count-only path keeps crippled test engines runnable.
func recoverEngine(eng pds.Engine) (txn.RecoveryReport, error) {
	if rr, ok := eng.(txn.RecoveryReporter); ok {
		return rr.RecoverReport()
	}
	var rep txn.RecoveryReport
	var err error
	rep.Recovered, err = eng.Recover()
	return rep, err
}

// RecoverOne runs engine recovery for shard i alone — the single-shard
// crash path: the victim was rebuilt and swapped in via Replace while every
// other shard kept serving, so only its own log scan is needed.
func (s *Set) RecoverOne(i int) (txn.RecoveryReport, error) {
	return recoverEngine(s.shards[i].Engine)
}

// RecoverAll runs every shard's engine recovery concurrently in a worker
// pool and merges the per-shard reports. workers <= 0 picks
// min(N, GOMAXPROCS): one worker per shard up to the core count, the point
// past which more workers only contend. The first shard whose recovery
// fails outright (not per-slot quarantine — that is reported, not fatal)
// aborts with its error; the merged report still carries every shard that
// finished.
//
// Each shard recovers against only its own pool, so the shards' recovery
// scans are fully independent — this is the O(pool) → O(pool/N) recovery
// claim made concrete: wall time tracks the largest shard, not the heap.
func (s *Set) RecoverAll(workers int) (RecoveryReport, error) {
	n := len(s.shards)
	if workers <= 0 || workers > n {
		workers = n
	}
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers < 1 {
		workers = 1
	}
	out := RecoveryReport{
		PerShard:   make([]txn.RecoveryReport, n),
		PerShardNS: make([]int64, n),
		Workers:    workers,
	}
	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				rep, err := recoverEngine(s.shards[i].Engine)
				out.PerShard[i] = rep
				out.PerShardNS[i] = time.Since(t0).Nanoseconds()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("shard %d: %w", i, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range s.shards {
		work <- i
	}
	close(work)
	wg.Wait()
	out.WallNS = time.Since(start).Nanoseconds()
	for _, rep := range out.PerShard {
		out.merge(rep)
	}
	return out, firstErr
}
