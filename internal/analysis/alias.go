// Package analysis implements the Clobber-NVM compiler passes of §4.4 over
// the mini-IR of package ir: a basic alias analysis, the conservative
// candidate-clobber-write identification, and the dependency-analysis
// propagation that removes "unexposed" and "shadowed" false candidates
// (Figures 4 and 5 of the paper).
//
// The paper runs these passes in LLVM; here they run over ir.Func bodies
// that encode the benchmark transactions. The pass output — the set of
// stores requiring clobber_log instrumentation — is compared conservative
// vs. refined for the optimization-effectiveness experiment (Figure 13),
// and the pass runtime is the "compile latency" of Figure 14.
package analysis

import "clobbernvm/internal/ir"

// AliasResult is the three-point alias lattice.
type AliasResult int

// Alias lattice values.
const (
	NoAlias AliasResult = iota
	MayAlias
	MustAlias
)

func (a AliasResult) String() string {
	switch a {
	case NoAlias:
		return "no"
	case MayAlias:
		return "may"
	default:
		return "must"
	}
}

// root chases GEP chains to the underlying object and accumulates the
// constant offset; exact is false if any step had a runtime offset.
func root(p *ir.Value) (base *ir.Value, offset int64, exact bool) {
	offset, exact = 0, true
	for {
		switch p.Op {
		case ir.OpGEP:
			offset += p.Const
			p = p.Args[0]
		case ir.OpGEPVar:
			exact = false
			p = p.Args[0]
		default:
			return p, offset, exact
		}
	}
}

// Alias decides the relationship of two pointer values, in the style of
// LLVM's basic alias analysis:
//
//   - identical SSA pointers must alias;
//   - distinct fresh allocations never alias anything else (noalias);
//   - same underlying object with known distinct offsets never alias, with
//     equal offsets must alias;
//   - everything else may alias.
func Alias(p, q *ir.Value) AliasResult {
	if p == q {
		return MustAlias
	}
	bp, op, ep := root(p)
	bq, oq, eq := root(q)

	if bp == bq {
		if ep && eq {
			if op == oq {
				return MustAlias
			}
			return NoAlias
		}
		return MayAlias
	}
	// Distinct roots: a fresh allocation cannot alias any other object.
	if bp.Op == ir.OpAlloc || bq.Op == ir.OpAlloc {
		return NoAlias
	}
	// Distinct parameters or loaded pointers may point anywhere.
	return MayAlias
}
