package analysis

import (
	"strings"
	"testing"
)

func TestExplainListInsert(t *testing.T) {
	out := Explain(ListInsert())
	for _, want := range []string{
		"transaction list_ins",
		"candidate input reads",
		"INSTRUMENT",
		"final plan: 1 clobber_log callback site(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainSkiplistShowsRemovals(t *testing.T) {
	out := Explain(SkiplistInsert())
	if !strings.Contains(out, "removed by refinement") {
		t.Fatalf("skiplist explain shows no removals:\n%s", out)
	}
	if !strings.Contains(out, "final plan: 3 clobber_log callback site(s)") {
		t.Fatalf("skiplist plan wrong:\n%s", out)
	}
}

func TestExplainCoversWholeCorpus(t *testing.T) {
	for _, f := range Corpus() {
		out := Explain(f)
		if !strings.Contains(out, f.Name) || !strings.Contains(out, "final plan") {
			t.Errorf("%s: malformed explain output", f.Name)
		}
	}
}

func TestDescribePointerForms(t *testing.T) {
	f := ListInsert()
	out := Explain(f)
	// Figure 2's head pointer is a param field.
	if !strings.Contains(out, "param lst+0") {
		t.Errorf("head pointer not described as param field:\n%s", out)
	}
}
