package analysis

import (
	"fmt"
	"strings"

	"clobbernvm/internal/ir"
)

// Explain renders a human-readable report of the clobber-write
// identification for one transaction: every candidate input read, every
// candidate clobber write, which candidates the refinement removed and why,
// and the final instrumentation plan. It is the developer-facing face of
// the compiler pass — what "compiling with the Clobber-NVM compiler"
// reports about your transaction.
func Explain(f *ir.Func) string {
	res := Analyze(f)
	var b strings.Builder
	fmt.Fprintf(&b, "transaction %s\n", f.Name)
	fmt.Fprintf(&b, "  %d blocks, %d loads, %d stores\n",
		len(f.Blocks), len(f.Loads()), len(f.Stores()))

	fmt.Fprintf(&b, "  candidate input reads (%d):\n", len(res.InputReads))
	for _, r := range res.InputReads {
		fmt.Fprintf(&b, "    %s: %s\n", loc(r), describePointer(r.Args[0]))
	}

	cons := res.ConservativeSites()
	fmt.Fprintf(&b, "  conservative clobber sites (%d):\n", len(cons))
	refined := map[*ir.Value]bool{}
	for _, s := range res.RefinedSites() {
		refined[s] = true
	}
	for _, s := range cons {
		status := "INSTRUMENT"
		if !refined[s] {
			status = "removed by refinement"
		}
		fmt.Fprintf(&b, "    %s: store to %s — %s\n", loc(s), describePointer(s.Args[0]), status)
	}
	fmt.Fprintf(&b, "  refinement removed %d unexposed and %d shadowed candidate pairs\n",
		res.RemovedUnexposed, res.RemovedShadowed)
	fmt.Fprintf(&b, "  final plan: %d clobber_log callback site(s)\n", len(res.RefinedSites()))
	return b.String()
}

func loc(v *ir.Value) string {
	return fmt.Sprintf("%s#%d", v.Block.Name, v.Index)
}

// describePointer renders a pointer expression's provenance.
func describePointer(p *ir.Value) string {
	switch p.Op {
	case ir.OpParam:
		return "param " + p.Name
	case ir.OpAlloc:
		return "fresh allocation " + p.Name
	case ir.OpGEP:
		return fmt.Sprintf("%s+%d", describePointer(p.Args[0]), p.Const)
	case ir.OpGEPVar:
		return describePointer(p.Args[0]) + "+<dynamic>"
	case ir.OpLoad:
		return "pointer loaded from " + describePointer(p.Args[0])
	default:
		return fmt.Sprintf("v%d", p.ID)
	}
}
