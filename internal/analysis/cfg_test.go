package analysis

import (
	"math/rand"
	"testing"

	"clobbernvm/internal/ir"
)

// TestCFGOracleOnCorpus executes every branching corpus transaction along
// random paths and checks the refined static plan covers every dynamic
// clobber — the CFG-level soundness property.
func TestCFGOracleOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, f := range Corpus() {
		res := Analyze(f)
		refined := map[*ir.Value]bool{}
		for _, s := range res.RefinedSites() {
			refined[s] = true
		}
		for trial := 0; trial < 40; trial++ {
			paramAddr := map[int]int64{}
			for i, p := range f.Params {
				if p.Ptr {
					paramAddr[i] = int64(1+rng.Intn(3)) << 20 // allow aliasing params
				}
			}
			gepOff := map[int]int64{}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpGEPVar {
						gepOff[in.ID] = int64(rng.Intn(3) * 8)
					}
				}
			}
			branch := func(cond *ir.Value, visits int) bool {
				if visits > 4 {
					// Bound loops: take the exit edge. Loop bodies branch
					// back on the first successor in our builders... take
					// whichever side was not taken before by flipping.
					return false
				}
				return rng.Intn(2) == 0
			}
			dyn, err := DynamicClobbersCFG(f, paramAddr, gepOff, branch, 10_000)
			if err != nil {
				t.Fatalf("%s trial %d: %v", f.Name, trial, err)
			}
			for st := range dyn {
				if !refined[st] {
					t.Fatalf("%s trial %d: dynamic clobber %v missed by refined plan",
						f.Name, trial, st)
				}
			}
		}
	}
}

// TestCFGOracleLoopClobbersOnce executes a loop that read-modify-writes one
// cell: only the first iteration's store is a true clobber.
func TestCFGOracleLoopClobbersOnce(t *testing.T) {
	f := ir.NewFunc("looponce", "*p")
	entry := f.Entry()
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	addr := entry.GEP(f.Param(0), 0)
	entry.Br(body)
	v := body.Load(addr, false)
	body.Store(addr, body.Arith("inc", v))
	cond := body.Arith("more")
	body.CondBr(cond, body, exit)
	exit.Ret()

	dyn, err := DynamicClobbersCFG(f, map[int]int64{0: 1 << 20}, nil,
		func(_ *ir.Value, visits int) bool { return visits < 5 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 1 {
		t.Fatalf("loop produced %d dynamic clobbers, want 1 (first iteration only)", len(dyn))
	}
	// The static plan instruments that site.
	res := Analyze(f)
	sites := res.RefinedSites()
	if len(sites) != 1 {
		t.Fatalf("static plan has %d sites, want 1", len(sites))
	}
	for st := range dyn {
		if st != sites[0] {
			t.Fatal("dynamic clobber not at the instrumented site")
		}
	}
}

// TestCFGOracleStepLimit guards against unbounded executions.
func TestCFGOracleStepLimit(t *testing.T) {
	f := ir.NewFunc("infinite", "*p")
	entry := f.Entry()
	body := f.NewBlock("body")
	entry.Br(body)
	body.Load(f.Param(0), false)
	body.Br(body) // genuine infinite loop
	if _, err := DynamicClobbersCFG(f, nil, nil,
		func(*ir.Value, int) bool { return true }, 100); err == nil {
		t.Fatal("infinite loop did not hit the step limit")
	}
}

// TestCFGOracleBranchDependentClobber: a store that clobbers only on one
// arm of a diamond must appear in the dynamic set only when that arm runs,
// and always in the static plan.
func TestCFGOracleBranchDependentClobber(t *testing.T) {
	f := ir.NewFunc("diamond", "*p")
	entry := f.Entry()
	yes := f.NewBlock("yes")
	no := f.NewBlock("no")
	exit := f.NewBlock("exit")
	addr := entry.GEP(f.Param(0), 0)
	v := entry.Load(addr, false)
	entry.CondBr(entry.Arith("c", v), yes, no)
	st := yes.Store(addr, yes.Arith("x", v))
	yes.Br(exit)
	no.Arith("noop")
	no.Br(exit)
	exit.Ret()

	run := func(takeYes bool) map[*ir.Value]bool {
		dyn, err := DynamicClobbersCFG(f, map[int]int64{0: 1 << 20}, nil,
			func(*ir.Value, int) bool { return takeYes }, 100)
		if err != nil {
			t.Fatal(err)
		}
		return dyn
	}
	if dyn := run(true); len(dyn) != 1 || !dyn[st] {
		t.Fatalf("yes-arm execution: clobbers = %v", dyn)
	}
	if dyn := run(false); len(dyn) != 0 {
		t.Fatalf("no-arm execution clobbered: %v", dyn)
	}
	res := Analyze(f)
	found := false
	for _, s := range res.RefinedSites() {
		if s == st {
			found = true
		}
	}
	if !found {
		t.Fatal("static plan misses the branch-dependent clobber site")
	}
}
