package analysis

import "clobbernvm/internal/ir"

// Corpus returns IR encodings of the transaction bodies of the paper's
// benchmarks. They are simplified to the memory-access skeleton that the
// clobber identification pass reasons about (scalar computation is opaque to
// the pass anyway). The pass is run over this corpus for the
// optimization-effectiveness counts (Figure 13) and the compile-latency
// measurement (Figure 14).
func Corpus() []*ir.Func {
	return []*ir.Func{
		ListInsert(),
		BPTreeInsert(),
		HashmapInsert(),
		SkiplistInsert(),
		RBTreeInsert(),
		MemcachedSet(),
		VacationReserve(),
		YadaRefine(),
	}
}

// ListInsert is the paper's running example (Figure 2): the only clobbered
// input is lst->hd.
func ListInsert() *ir.Func {
	f := ir.NewFunc("list_ins", "*lst", "*v")
	b := f.Entry()
	hd := b.GEP(f.Param(0), 0) // &lst->hd
	n := b.Alloc("n")
	val := b.GEP(n, 0)
	nxt := b.GEP(n, 8)
	b.Store(val, b.Load(f.Param(1), false)) // n->val = *v (strcpy)
	old := b.Load(hd, true)                 // read input lst->hd
	b.Store(nxt, old)                       // n->nxt = lst->hd
	b.Store(hd, n)                          // lst->hd = n   ← clobber write
	b.Ret()
	return f
}

// BPTreeInsert models a leaf insert with a key shift: the occupancy counter
// is read-modify-written (clobber), shifted slots are read from one address
// and written to another (the loop's first iteration clobbers; later
// iterations are shadowed), and the new key lands in a vacated slot.
func BPTreeInsert() *ir.Func {
	f := ir.NewFunc("bptree_insert", "*leaf", "key", "val")
	b := f.Entry()
	cntA := b.GEP(f.Param(0), 0)
	cnt := b.Load(cntA, false) // input: occupancy
	loop := f.NewBlock("shift")
	done := f.NewBlock("done")
	b.Br(loop)

	// shift loop: slots[i+1] = slots[i] — address depends on i (GEPVar).
	i := loop.Arith("i")
	src := loop.GEPVar(f.Param(0), i)
	dst := loop.GEPVar(f.Param(0), loop.Arith("i+1", i))
	loop.Store(dst, loop.Load(src, false)) // may clobber slots read earlier
	cond := loop.Arith("i>pos", i)
	loop.CondBr(cond, loop, done)

	slot := done.GEPVar(f.Param(0), done.Arith("pos"))
	done.Store(slot, done.Arith("kv")) // new key/value into vacated slot
	done.Store(cntA, done.Arith("inc", cnt))
	done.Ret()
	return f
}

// HashmapInsert models the PMDK-repository hashmap: one bucket-head
// clobber, everything else writes a fresh node.
func HashmapInsert() *ir.Func {
	f := ir.NewFunc("hashmap_insert", "*buckets", "key", "val")
	b := f.Entry()
	h := b.Arith("hash")
	head := b.GEPVar(f.Param(0), h) // &buckets[h]
	n := b.Alloc("entry")
	b.Store(b.GEP(n, 0), b.Arith("k"))
	b.Store(b.GEP(n, 8), b.Arith("v"))
	old := b.Load(head, true)
	b.Store(b.GEP(n, 16), old) // entry->next = bucket head
	b.Store(head, n)           // bucket head = entry  ← clobber
	b.Ret()
	return f
}

// SkiplistInsert models a three-level splice plus two patterns the
// refinement eliminates: an unexposed candidate (a node field written before
// it is read back) and a shadowed candidate (a second write to the same
// level-0 predecessor pointer). Five conservative candidates, three
// refined — the counts §5.9 reports.
func SkiplistInsert() *ir.Func {
	f := ir.NewFunc("skiplist_insert", "*pred0", "*pred1", "*pred2", "key")
	b := f.Entry()
	n := b.Alloc("node")

	// Unexposed pattern on the key buffer: write kb->key, read it back
	// through a view the analysis cannot resolve (may-alias), then write
	// kb->key again. If the second store really overwrote the read's
	// location, the first store already had — the read was never an input.
	kb := b.Alloc("keybuf")
	keyA := b.GEP(kb, 0)
	b.Store(keyA, b.Arith("key"))
	view := b.GEPVar(kb, b.Arith("off")) // analysis cannot prove view==keyA
	reread := b.Load(view, false)
	b.Store(keyA, b.Arith("norm", reread)) // unexposed false candidate

	// Three genuine level splices: pred[i]->next is read then overwritten.
	for lvl := 0; lvl < 3; lvl++ {
		predNext := b.GEP(f.Param(lvl), 8)
		old := b.Load(predNext, true)
		b.Store(b.GEP(n, int64(8+8*lvl)), old) // n->next[lvl] = old
		b.Store(predNext, n)                   // pred->next = n ← clobber
	}

	// Shadowed pattern: a second store to pred0->next (e.g. a fix-up path):
	// the first splice already clobbered it.
	pred0Next := b.GEP(f.Param(0), 8)
	b.Store(pred0Next, b.Arith("fixup", b.Load(b.GEP(n, 8), true)))
	b.Ret()
	return f
}

// RBTreeInsert models insertion plus one recolor/rotation step: parent and
// grandparent pointers and colors are read then overwritten.
func RBTreeInsert() *ir.Func {
	f := ir.NewFunc("rbtree_insert", "*root", "key")
	b := f.Entry()
	n := b.Alloc("node")
	b.Store(b.GEP(n, 0), b.Arith("key"))
	b.Store(b.GEP(n, 24), b.Arith("RED"))

	parentA := b.GEPVar(f.Param(0), b.Arith("searchpath"))
	parent := b.Load(parentA, true) // input: link to attach under
	childA := b.GEP(parent, 8)
	oldChild := b.Load(childA, true)
	_ = oldChild
	b.Store(childA, n) // attach ← clobber of parent->child

	rebalance := f.NewBlock("rebalance")
	exit := f.NewBlock("exit")
	b.CondBr(b.Arith("redparent"), rebalance, exit)

	colorA := rebalance.GEP(parent, 24)
	c := rebalance.Load(colorA, false)
	rebalance.Store(colorA, rebalance.Arith("flip", c)) // recolor ← clobber
	gpA := rebalance.GEPVar(f.Param(0), rebalance.Arith("gp"))
	gp := rebalance.Load(gpA, true)
	rotA := rebalance.GEP(gp, 8)
	rebalance.Store(rotA, rebalance.Load(rotA, true)) // rotation ← clobber
	rebalance.Br(exit)
	exit.Ret()
	return f
}

// MemcachedSet models the memcached store path: hash-bucket chain head
// clobber, LRU head/tail clobbers, fresh item writes.
func MemcachedSet() *ir.Func {
	f := ir.NewFunc("mc_set", "*table", "*lru", "key", "val")
	b := f.Entry()
	it := b.Alloc("item")
	b.Store(b.GEP(it, 0), b.Arith("key"))
	b.Store(b.GEP(it, 8), b.Arith("val"))

	bucket := b.GEPVar(f.Param(0), b.Arith("hash"))
	b.Store(b.GEP(it, 16), b.Load(bucket, true)) // it->hnext = bucket head
	b.Store(bucket, it)                          // ← clobber

	lruHead := b.GEP(f.Param(1), 0)
	oldHead := b.Load(lruHead, true)
	b.Store(b.GEP(it, 24), oldHead) // it->next = lru head
	b.Store(lruHead, it)            // ← clobber
	prevA := b.GEP(oldHead, 32)
	b.Store(prevA, it) // oldHead->prev = it (read? no — plain output)
	b.Ret()
	return f
}

// VacationReserve models a STAMP vacation reservation: table lookups,
// then decrement of free-count and customer-list clobbers.
func VacationReserve() *ir.Func {
	f := ir.NewFunc("vacation_reserve", "*tbl", "*cust", "id")
	b := f.Entry()
	rec := b.Load(b.GEPVar(f.Param(0), b.Arith("find")), true)
	freeA := b.GEP(rec, 8)
	free := b.Load(freeA, false)
	ok := b.Arith("free>0", free)
	yes := f.NewBlock("reserve")
	no := f.NewBlock("bail")
	b.CondBr(ok, yes, no)

	yes.Store(freeA, yes.Arith("dec", free)) // ← clobber (free count)
	resA := yes.GEP(f.Param(1), 16)
	oldRes := yes.Load(resA, true)
	r := yes.Alloc("reservation")
	yes.Store(yes.GEP(r, 0), yes.Arith("id"))
	yes.Store(yes.GEP(r, 8), oldRes)
	yes.Store(resA, r) // ← clobber (customer reservation list)
	yes.Ret()
	no.Ret()
	return f
}

// YadaRefine models one Ruppert refinement step: pop from the work queue
// (head clobber), retriangulate a cavity (fresh triangles), push new bad
// triangles (another head clobber), update the mesh triangle links.
func YadaRefine() *ir.Func {
	f := ir.NewFunc("yada_refine", "*queue", "*mesh")
	b := f.Entry()
	headA := b.GEP(f.Param(0), 0)
	tri := b.Load(headA, true)                  // queue head (input)
	b.Store(headA, b.Load(b.GEP(tri, 0), true)) // pop ← clobber

	loop := f.NewBlock("cavity")
	done := f.NewBlock("done")
	b.Br(loop)
	// cavity loop: unlink neighbour triangles (read then overwrite links).
	nb := loop.Load(loop.GEPVar(f.Param(1), loop.Arith("walk")), true)
	linkA := loop.GEP(nb, 8)
	loop.Store(linkA, loop.Load(linkA, true)) // relink ← clobber (per edge)
	loop.CondBr(loop.Arith("more"), loop, done)

	nt := done.Alloc("newtri")
	done.Store(done.GEP(nt, 0), done.Arith("v0"))
	done.Store(done.GEP(nt, 8), done.Arith("v1"))
	oldHead := done.Load(headA, true)
	done.Store(done.GEP(nt, 16), oldHead)
	done.Store(headA, nt) // push new bad triangle ← clobber (shadowed by pop? distinct read)
	done.Ret()
	return f
}
