package analysis

import (
	"sort"

	"clobbernvm/internal/ir"
)

// Pair links a candidate input read with a candidate clobber write.
type Pair struct {
	Read  *ir.Value
	Write *ir.Value
}

// Result is the outcome of the clobber-write identification pass.
type Result struct {
	Func *ir.Func
	// InputReads are the candidate input reads (loads that may be the
	// first access to a transaction input).
	InputReads []*ir.Value
	// Conservative is the candidate set before dependency-analysis
	// propagation (Figure 4).
	Conservative []Pair
	// Refined is the candidate set after removing unexposed and shadowed
	// false candidates (Figure 5).
	Refined []Pair
	// RemovedUnexposed / RemovedShadowed count eliminated candidates.
	RemovedUnexposed int
	RemovedShadowed  int
}

// ConservativeSites returns the distinct store instructions the conservative
// pass would instrument.
func (r *Result) ConservativeSites() []*ir.Value { return sites(r.Conservative) }

// RefinedSites returns the distinct store instructions the refined pass
// instruments.
func (r *Result) RefinedSites() []*ir.Value { return sites(r.Refined) }

func sites(pairs []Pair) []*ir.Value {
	seen := map[*ir.Value]bool{}
	var out []*ir.Value
	for _, p := range pairs {
		if !seen[p.Write] {
			seen[p.Write] = true
			out = append(out, p.Write)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Analyze runs the full clobber-write identification: conservative candidate
// discovery followed by dependency-analysis propagation.
func Analyze(f *ir.Func) *Result {
	dom := ir.BuildDomTree(f)
	res := &Result{Func: f}

	loads := f.Loads()
	stores := f.Stores()

	// Step 1 (Figure 4, left): candidate input reads. A read dominated by
	// an earlier store that MUST write the same address cannot read a
	// transaction input.
	for _, ld := range loads {
		dominated := false
		for _, st := range stores {
			if dom.Dominates(st, ld) && Alias(st.Args[0], ld.Args[0]) == MustAlias {
				dominated = true
				break
			}
		}
		if !dominated {
			res.InputReads = append(res.InputReads, ld)
		}
	}

	// Step 2 (Figure 4, right): candidate clobber writes. Any successor
	// store that MAY write a candidate read's address is a candidate.
	for _, ld := range res.InputReads {
		for _, st := range stores {
			if !dom.Reachable(ld, st) {
				continue
			}
			if Alias(st.Args[0], ld.Args[0]) != NoAlias {
				res.Conservative = append(res.Conservative, Pair{Read: ld, Write: st})
			}
		}
	}

	// Dependency-analysis propagation (Figure 5).
	for _, pr := range res.Conservative {
		if unexposed(dom, stores, pr) {
			res.RemovedUnexposed++
			continue
		}
		if shadowed(dom, res.Conservative, pr) {
			res.RemovedShadowed++
			continue
		}
		res.Refined = append(res.Refined, pr)
	}
	return res
}

// unexposed detects the first false-candidate type (Figure 5, left): some
// earlier store w0 dominates the read and MUST alias the candidate write. If
// the candidate write really overwrote the read's location, then w0 already
// wrote it before the read — so the read was never an input.
func unexposed(dom *ir.DomTree, stores []*ir.Value, pr Pair) bool {
	for _, w0 := range stores {
		if w0 == pr.Write {
			continue
		}
		if !dom.Dominates(w0, pr.Read) {
			continue
		}
		if Alias(w0.Args[0], pr.Write.Args[0]) == MustAlias {
			return true
		}
	}
	return false
}

// shadowed detects the second false-candidate type (Figure 5, right): an
// earlier candidate clobber write w1 dominates the candidate w, with an
// alias relationship guaranteeing that if w overwrites the input, w1 already
// did. The three sufficient combinations from the paper reduce to: w1 is
// itself a clobber candidate for the same read, and w1 MUST-aliases either
// the candidate write or the read address.
func shadowed(dom *ir.DomTree, all []Pair, pr Pair) bool {
	for _, other := range all {
		w1 := other.Write
		if other.Read != pr.Read || w1 == pr.Write {
			continue
		}
		if !dom.Dominates(w1, pr.Write) {
			continue
		}
		if Alias(w1.Args[0], pr.Write.Args[0]) == MustAlias ||
			Alias(w1.Args[0], pr.Read.Args[0]) == MustAlias {
			return true
		}
	}
	return false
}
