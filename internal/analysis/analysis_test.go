package analysis

import (
	"math/rand"
	"testing"

	"clobbernvm/internal/ir"
)

func TestAliasLattice(t *testing.T) {
	f := ir.NewFunc("alias", "*p", "*q")
	b := f.Entry()
	p, q := f.Param(0), f.Param(1)
	a1 := b.Alloc("a1")
	a2 := b.Alloc("a2")
	g8 := b.GEP(p, 8)
	g8b := b.GEP(p, 8)
	g16 := b.GEP(p, 16)
	gv := b.GEPVar(p, b.Arith("i"))
	ga1 := b.GEP(a1, 8)
	b.Ret()

	cases := []struct {
		x, y *ir.Value
		want AliasResult
	}{
		{p, p, MustAlias},
		{p, q, MayAlias},
		{a1, a2, NoAlias},
		{a1, p, NoAlias},
		{g8, g8b, MustAlias},
		{g8, g16, NoAlias},
		{g8, gv, MayAlias},
		{gv, q, MayAlias},
		{ga1, q, NoAlias},
	}
	for i, c := range cases {
		if got := Alias(c.x, c.y); got != c.want {
			t.Errorf("case %d: Alias = %v, want %v", i, got, c.want)
		}
		if got := Alias(c.y, c.x); got != c.want {
			t.Errorf("case %d (sym): Alias = %v, want %v", i, got, c.want)
		}
	}
}

func TestListInsertHasOneClobberSite(t *testing.T) {
	res := Analyze(ListInsert())
	if n := len(res.RefinedSites()); n != 1 {
		t.Fatalf("list_ins refined sites = %d, want 1 (the head update)", n)
	}
	site := res.RefinedSites()[0]
	// The site must be the store to &lst->hd (a GEP of param 0 at offset 0).
	if site.Args[0].Op != ir.OpGEP || site.Args[0].Args[0] != res.Func.Param(0) {
		t.Fatalf("wrong site identified: %v", site)
	}
}

func TestFigure4ConservativeIdentification(t *testing.T) {
	// Figure 4's pattern: read x; later two stores that may alias x.
	// Conservatively both are candidates.
	f := ir.NewFunc("fig4", "*x", "*u")
	b := f.Entry()
	x, u := f.Param(0), f.Param(1)
	b.Load(x, false)
	b.Store(u, b.Arith("v1")) // may alias x
	b.Store(u, b.Arith("v2")) // may alias x, but shadowed by the first
	b.Ret()

	res := Analyze(f)
	if n := len(res.ConservativeSites()); n != 2 {
		t.Fatalf("conservative sites = %d, want 2", n)
	}
	if n := len(res.RefinedSites()); n != 1 {
		t.Fatalf("refined sites = %d, want 1 (second store shadowed)", n)
	}
	if res.RemovedShadowed != 1 {
		t.Fatalf("RemovedShadowed = %d", res.RemovedShadowed)
	}
}

func TestFigure5Unexposed(t *testing.T) {
	// Figure 5 (left): store u; load x (may alias u → candidate input);
	// store u again. If the second store hits x's location, so did the
	// first — before the read. The read was never an input.
	f := ir.NewFunc("fig5u", "*x", "*u")
	b := f.Entry()
	x, u := f.Param(0), f.Param(1)
	b.Store(u, b.Arith("v1"))
	b.Load(x, false)
	b.Store(u, b.Arith("v2"))
	b.Ret()

	res := Analyze(f)
	if res.RemovedUnexposed < 1 {
		t.Fatalf("RemovedUnexposed = %d, want >= 1", res.RemovedUnexposed)
	}
	if n := len(res.RefinedSites()); n != 0 {
		t.Fatalf("refined sites = %d, want 0", n)
	}
}

func TestLoopShadowing(t *testing.T) {
	// A loop whose body rewrites the same must-alias location each
	// iteration: the paper notes the first iteration clobbers and later
	// ones are shadowed. With one store site the site stays, but a second
	// fix-up store after the loop must be removed.
	f := ir.NewFunc("loopshadow", "*p")
	b := f.Entry()
	addr := b.GEP(f.Param(0), 0)
	b.Load(addr, false)
	loop := f.NewBlock("loop")
	after := f.NewBlock("after")
	b.Br(loop)
	loop.Store(addr, loop.Arith("iter"))
	loop.CondBr(loop.Arith("more"), loop, after)
	after.Store(addr, after.Arith("fixup"))
	after.Ret()

	res := Analyze(f)
	if n := len(res.ConservativeSites()); n != 2 {
		t.Fatalf("conservative sites = %d, want 2", n)
	}
	sites := res.RefinedSites()
	if len(sites) != 1 || sites[0].Block.Name != "loop" {
		t.Fatalf("refined sites = %v, want just the loop store", sites)
	}
}

func TestSkiplistCounts(t *testing.T) {
	// §5.9: "the compiler pass removes two clobber candidates out of five,
	// ending up requiring only three clobber_log entries per transaction."
	res := Analyze(SkiplistInsert())
	if n := len(res.ConservativeSites()); n != 5 {
		t.Fatalf("skiplist conservative sites = %d, want 5", n)
	}
	if n := len(res.RefinedSites()); n != 3 {
		t.Fatalf("skiplist refined sites = %d, want 3", n)
	}
}

func TestCorpusAnalyzesCleanly(t *testing.T) {
	for _, f := range Corpus() {
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		res := Analyze(f)
		if len(res.RefinedSites()) > len(res.ConservativeSites()) {
			t.Fatalf("%s: refinement added sites", f.Name)
		}
		if len(res.ConservativeSites()) == 0 {
			t.Fatalf("%s: no clobber candidates at all (suspicious)", f.Name)
		}
		t.Logf("%-18s conservative=%d refined=%d (unexposed-removed=%d shadowed-removed=%d)",
			f.Name, len(res.ConservativeSites()), len(res.RefinedSites()),
			res.RemovedUnexposed, res.RemovedShadowed)
	}
}

// TestSoundnessAgainstDynamicOracle generates random straight-line programs
// and checks that every dynamically observed clobber store is identified by
// the refined static pass (the pass may over-approximate, never under-).
func TestSoundnessAgainstDynamicOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 300; trial++ {
		f, gepVars := randomStraightLine(rng)
		res := Analyze(f)
		refined := map[*ir.Value]bool{}
		for _, s := range res.RefinedSites() {
			refined[s] = true
		}
		// Execute under several concrete aliasing scenarios.
		for scenario := 0; scenario < 4; scenario++ {
			paramAddr := map[int]int64{}
			for i, p := range f.Params {
				if !p.Ptr {
					continue
				}
				switch scenario {
				case 0: // all disjoint
					paramAddr[i] = int64(1+i) << 20
				case 1: // all the same object
					paramAddr[i] = 1 << 20
				default: // random overlap
					paramAddr[i] = int64(1+rng.Intn(2)) << 20
				}
			}
			gepOff := map[int]int64{}
			for _, id := range gepVars {
				gepOff[id] = int64(rng.Intn(3) * 8)
			}
			dyn := DynamicClobbers(f, paramAddr, gepOff)
			for st := range dyn {
				if !refined[st] {
					t.Fatalf("trial %d scenario %d: dynamic clobber %v missed by refined pass\nfunc %s",
						trial, scenario, st, f.Name)
				}
			}
		}
	}
}

// randomStraightLine builds a random single-block function over a few
// pointers. Returns the IDs of OpGEPVar instructions for offset assignment.
func randomStraightLine(rng *rand.Rand) (*ir.Func, []int) {
	f := ir.NewFunc("rand", "*p", "*q")
	b := f.Entry()
	ptrs := []*ir.Value{f.Param(0), f.Param(1)}
	var gepVars []int
	var vals []*ir.Value
	vals = append(vals, b.Const(1))

	n := 4 + rng.Intn(12)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			ptrs = append(ptrs, b.Alloc("a"))
		case 1:
			base := ptrs[rng.Intn(len(ptrs))]
			ptrs = append(ptrs, b.GEP(base, int64(rng.Intn(3)*8)))
		case 2:
			base := ptrs[rng.Intn(len(ptrs))]
			g := b.GEPVar(base, vals[rng.Intn(len(vals))])
			gepVars = append(gepVars, g.ID)
			ptrs = append(ptrs, g)
		case 3, 4:
			addr := ptrs[rng.Intn(len(ptrs))]
			vals = append(vals, b.Load(addr, false))
		default:
			addr := ptrs[rng.Intn(len(ptrs))]
			b.Store(addr, vals[rng.Intn(len(vals))])
		}
	}
	// Ensure at least one read-write pair exists.
	addr := ptrs[rng.Intn(len(ptrs))]
	vals = append(vals, b.Load(addr, false))
	b.Store(addr, vals[len(vals)-1])
	b.Ret()
	return f, gepVars
}
