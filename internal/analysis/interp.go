package analysis

import (
	"fmt"

	"clobbernvm/internal/ir"
)

// DynamicClobbers executes a straight-line function (single block, no
// branches) with concrete addresses and returns the store instructions that
// truly overwrite a transaction input during that execution. It is the
// ground-truth oracle the static pass must over-approximate: a sound pass
// never instruments fewer sites than the dynamic truth.
//
// paramAddr assigns each pointer parameter its concrete object address;
// gepVarOff assigns each OpGEPVar instruction its concrete offset for this
// execution. Loaded pointer values resolve to whatever address arithmetic
// stored there earlier, or to a fresh unaliased address if never written.
func DynamicClobbers(f *ir.Func, paramAddr map[int]int64, gepVarOff map[int]int64) map[*ir.Value]bool {
	if len(f.Blocks) != 1 && len(f.Entry().Succs) != 0 {
		panic("analysis: DynamicClobbers requires a straight-line function")
	}
	addrOf := make(map[*ir.Value]int64) // pointer value → concrete address
	nextFresh := int64(1 << 40)
	resolve := func(v *ir.Value) int64 {
		if a, ok := addrOf[v]; ok {
			return a
		}
		nextFresh += 1 << 20
		addrOf[v] = nextFresh
		return nextFresh
	}
	for i, p := range f.Params {
		if p.Ptr {
			if a, ok := paramAddr[i]; ok {
				addrOf[p] = a
			}
		}
	}

	memPtr := make(map[int64]*ir.Value) // address → pointer value stored there
	read := make(map[int64]bool)
	written := make(map[int64]bool)
	clobbers := make(map[*ir.Value]bool)

	var evalAddr func(v *ir.Value) int64
	evalAddr = func(v *ir.Value) int64 {
		switch v.Op {
		case ir.OpGEP:
			return evalAddr(v.Args[0]) + v.Const
		case ir.OpGEPVar:
			off := gepVarOff[v.ID]
			return evalAddr(v.Args[0]) + off
		case ir.OpAlloc, ir.OpParam:
			return resolve(v)
		case ir.OpLoad:
			// A loaded pointer: resolve through memory if a pointer was
			// stored at that address, else a fresh object.
			a := evalAddr(v.Args[0])
			if pv, ok := memPtr[a]; ok {
				return evalAddr(pv)
			}
			return resolve(v)
		default:
			return resolve(v)
		}
	}

	for _, in := range f.Entry().Instrs {
		switch in.Op {
		case ir.OpLoad:
			a := evalAddr(in.Args[0])
			if !written[a] {
				read[a] = true
			}
		case ir.OpStore:
			a := evalAddr(in.Args[0])
			// Only the FIRST overwrite of a still-intact input is a
			// clobber; once written, the location no longer holds the
			// input (later stores are the "shadowed" pattern).
			if read[a] && !written[a] {
				clobbers[in] = true
			}
			written[a] = true
			if in.Args[1].Ptr {
				memPtr[a] = in.Args[1]
			}
		}
	}
	return clobbers
}

// DynamicClobbersCFG is the control-flow-aware version of DynamicClobbers:
// it executes f along one concrete path, with branch directions chosen by
// branchFn (called with the CondBr instruction and how many times that
// branch has executed, so loops can be bounded) and a hard step limit. It
// returns the store instructions that truly clobbered an input on that
// path. As with the straight-line oracle, a sound static pass must have
// every returned store in its refined instrumentation plan.
func DynamicClobbersCFG(
	f *ir.Func,
	paramAddr map[int]int64,
	gepVarOff map[int]int64,
	branchFn func(cond *ir.Value, visits int) bool,
	maxSteps int,
) (map[*ir.Value]bool, error) {
	addrOf := make(map[*ir.Value]int64)
	nextFresh := int64(1 << 40)
	resolve := func(v *ir.Value) int64 {
		if a, ok := addrOf[v]; ok {
			return a
		}
		nextFresh += 1 << 20
		addrOf[v] = nextFresh
		return nextFresh
	}
	for i, p := range f.Params {
		if p.Ptr {
			if a, ok := paramAddr[i]; ok {
				addrOf[p] = a
			}
		}
	}

	memPtr := make(map[int64]*ir.Value)
	read := make(map[int64]bool)
	written := make(map[int64]bool)
	clobbers := make(map[*ir.Value]bool)

	// evalAddr resolves pointer expressions; inProgress breaks cycles that
	// arise when a pointer stored in memory (memPtr) leads back to a load
	// of the same location (possible in list/graph-shaped programs).
	inProgress := map[*ir.Value]bool{}
	var evalAddr func(v *ir.Value) int64
	evalAddr = func(v *ir.Value) int64 {
		switch v.Op {
		case ir.OpGEP:
			return evalAddr(v.Args[0]) + v.Const
		case ir.OpGEPVar:
			return evalAddr(v.Args[0]) + gepVarOff[v.ID]
		case ir.OpAlloc, ir.OpParam:
			return resolve(v)
		case ir.OpLoad:
			if inProgress[v] {
				return resolve(v)
			}
			inProgress[v] = true
			a := evalAddr(v.Args[0])
			var out int64
			if pv, ok := memPtr[a]; ok && pv != v {
				out = evalAddr(pv)
			} else {
				out = resolve(v)
			}
			delete(inProgress, v)
			return out
		default:
			return resolve(v)
		}
	}

	visits := map[*ir.Value]int{}
	block := f.Entry()
	steps := 0
	for {
		var next *ir.Block
		for _, in := range block.Instrs {
			steps++
			if steps > maxSteps {
				return nil, fmt.Errorf("analysis: execution exceeded %d steps", maxSteps)
			}
			switch in.Op {
			case ir.OpLoad:
				a := evalAddr(in.Args[0])
				if !written[a] {
					read[a] = true
				}
			case ir.OpStore:
				a := evalAddr(in.Args[0])
				if read[a] && !written[a] {
					clobbers[in] = true
				}
				written[a] = true
				if in.Args[1].Ptr {
					memPtr[a] = in.Args[1]
				}
			case ir.OpBr:
				next = block.Succs[0]
			case ir.OpCondBr:
				visits[in]++
				if branchFn(in, visits[in]) {
					next = block.Succs[0]
				} else {
					next = block.Succs[1]
				}
			case ir.OpRet:
				return clobbers, nil
			}
		}
		if next == nil {
			return clobbers, nil
		}
		block = next
	}
}
