// Package clobber implements Clobber-NVM's failure-atomicity engine: the
// paper's primary contribution (§3–§4).
//
// Clobber logging is undo-then-reexecute with the undo logging restricted to
// clobber writes — stores that overwrite a transaction *input* (a value read
// before it is written inside the transaction). Recovery restores the
// clobbered inputs from the clobber_log, restores volatile inputs (function
// name and arguments) from the v_log, and re-executes the interrupted
// transaction from the beginning; everything else the crash tore is simply
// overwritten by the deterministic re-execution.
//
// The paper identifies clobber writes with an LLVM pass. Go offers no such
// hook, so this engine interposes on every transactional memory access
// (txn.Mem — exactly where the compiler pass would have inserted callbacks)
// and detects clobber writes dynamically with a per-transaction access map:
// a store to a location that was loaded earlier in the transaction, and has
// not already been clobber-logged, is a clobber write. Two precision modes
// reproduce the compiler ablation of §5.9 (Figure 13):
//
//   - refined (default): word-granularity tracking; loads of locations the
//     transaction itself already wrote are not inputs (the "unexposed"
//     refinement), and locations already clobber-logged are never logged
//     again (the "shadowed" refinement, which in loops removes every
//     iteration after the first);
//   - conservative: the same tracking with neither refinement — loads of
//     self-written words still register as inputs and already-logged words
//     are logged again on later stores, modelling alias-analysis-only
//     identification without dependency propagation.
//
// Log layout per worker slot (fixed table, one slot per thread, matching the
// paper's per-thread v_log):
//
//	status word   seq<<2 | phase   (idle / ongoing / freeing)
//	v_log         txfunc name + encoded args + checksum, in a pre-allocated
//	              buffer — one entry, hence exactly two fences per
//	              transaction (begin and commit), the property §5.3 credits
//	              for v_log's low cost
//	clobber_log   a plog.DataLog of (addr, old bytes) records, one fence per
//	              entry (built over the same log subsystem as the PMDK-style
//	              undo engine, as in the paper)
//	alloc log     best-effort record of transactional allocations, reclaimed
//	              before re-execution so re-executed pmallocs do not leak
//	free log      deferred frees, applied only after commit so interrupted
//	              transactions can still read the memory they freed
package clobber

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"clobbernvm/internal/nvm"
	"clobbernvm/internal/obs"
	"clobbernvm/internal/plog"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/txn"
)

const (
	phaseIdle    = 0
	phaseOngoing = 1
	phaseFreeing = 2

	anchorMagic = 0x434c4f4252 // "CLOBR"

	maxNameLen = 64

	// Slot header field offsets.
	offStatus         = 0
	offNameLen        = 8
	offName           = 16
	offArgsLen        = 16 + maxNameLen
	offVLogChecksum   = offArgsLen + 8
	offFreeApplied    = offVLogChecksum + 8
	offReclaimApplied = offFreeApplied + 8
	offArgs           = 128
)

// rootSlot is the pool root slot anchoring this engine's slot table.
const rootSlot = 1

// Options configures engine creation.
type Options struct {
	// Slots is the number of worker slots (default txn.MaxSlots).
	Slots int
	// ArgsCap is the per-slot v_log buffer capacity (default 4096).
	ArgsCap uint64
	// DataLogCap is the per-slot clobber_log capacity (default 1 MiB).
	DataLogCap uint64
	// AllocLogCap / FreeLogCap bound per-transaction allocs and frees
	// (default 4096 each).
	AllocLogCap int
	FreeLogCap  int
	// Conservative disables the dependency-analysis refinements
	// (Fig 13 baseline).
	Conservative bool
	// DisableVLog skips v_log persistence (Clobber-NVM-clobberlog variant
	// of §5.3; NOT failure-atomic).
	DisableVLog bool
	// DisableClobberLog skips clobber_log persistence (Clobber-NVM-vlog
	// variant of §5.3; NOT failure-atomic).
	DisableClobberLog bool
	// LineLog formats the clobber_log with the write-combined line writer:
	// entries stream through a 64-byte staging buffer, one Store+FlushOpt
	// per touched line, validated by per-line validity words. Attach
	// detects the mode from the log magic, so only Create needs the flag.
	LineLog bool
}

func (o *Options) fill() {
	if o.Slots <= 0 || o.Slots > txn.MaxSlots {
		o.Slots = txn.MaxSlots
	}
	if o.ArgsCap == 0 {
		o.ArgsCap = 4096
	}
	if o.DataLogCap == 0 {
		o.DataLogCap = 1 << 20
	}
	if o.AllocLogCap == 0 {
		o.AllocLogCap = 4096
	}
	if o.FreeLogCap == 0 {
		o.FreeLogCap = 4096
	}
}

// ErrTxTooLarge reports exhaustion of a per-transaction log area.
var ErrTxTooLarge = errors.New("clobber: transaction exceeds log capacity")

// ErrDirtyAbort reports a txfunc error after it had already stored to
// persistent memory: clobber transactions commit at begin and cannot roll
// back, so failing after the first store violates the programming model.
var ErrDirtyAbort = errors.New("clobber: txfunc failed after writing (transactions cannot abort)")

// Engine is the Clobber-NVM failure-atomicity engine.
type Engine struct {
	pool  *nvm.Pool
	alloc *pmem.Allocator
	reg   txn.Registry
	stats txn.Stats
	opts  Options
	slots []*slot
	probe *obs.Probe
}

var (
	_ txn.Engine           = (*Engine)(nil)
	_ txn.RecoveryReporter = (*Engine)(nil)
)

type slot struct {
	mu   sync.Mutex
	id   int
	hdr  uint64 // slot block base address
	dlog *plog.DataLog
	alog *plog.AddrLog
	flog *plog.AddrLog
	seq  uint64 // volatile cache of the last used sequence number

	// ftab is the per-slot access-map table, reused across transactions so
	// the tracking structures are allocated once per worker, not per txn.
	ftab *flagTable
	// vbuf stages the v_log entry so begin issues one Store for the whole
	// header+args block instead of one per field.
	vbuf []byte

	// quarantined, when non-nil, records why attach or recovery set this
	// slot aside (log corruption). The slot's persistent state is left
	// untouched for forensics; Run returns txn.ErrSlotQuarantined.
	quarantined error
}

// Create formats a fresh engine on the pool. The allocator must already be
// created. The engine anchor is stored in pool root slot 1.
func Create(p *nvm.Pool, a *pmem.Allocator, opts Options) (*Engine, error) {
	opts.fill()
	e := &Engine{pool: p, alloc: a, opts: opts}
	e.probe = obs.NewProbe(e.Name())

	anchorSize := uint64(24 + opts.Slots*8)
	anchor, err := a.Alloc(0, anchorSize)
	if err != nil {
		return nil, fmt.Errorf("clobber: create anchor: %w", err)
	}
	p.Store64(anchor, anchorMagic)
	p.Store64(anchor+8, uint64(opts.Slots))
	p.Store64(anchor+16, opts.ArgsCap)

	hdrSize := uint64(offArgs) + opts.ArgsCap
	dlogOff := align8(hdrSize)
	alogOff := dlogOff + plog.DataLogSize(opts.DataLogCap)
	flogOff := alogOff + plog.AddrLogSize(opts.AllocLogCap)
	slotSize := flogOff + plog.AddrLogSize(opts.FreeLogCap)

	for i := 0; i < opts.Slots; i++ {
		base, err := a.Alloc(i, slotSize)
		if err != nil {
			return nil, fmt.Errorf("clobber: create slot %d: %w", i, err)
		}
		// Zero the header so status reads as idle/seq 0.
		p.Store(base, make([]byte, offArgs))
		p.Persist(base, offArgs)
		s := &slot{
			id:   i,
			hdr:  base,
			dlog: plog.FormatDataLogMode(p, i, base+dlogOff, opts.DataLogCap, opts.LineLog),
			alog: plog.FormatAddrLog(p, i, base+alogOff, opts.AllocLogCap),
			flog: plog.FormatAddrLog(p, i, base+flogOff, opts.FreeLogCap),
		}
		e.slots = append(e.slots, s)
		p.Store64(anchor+24+uint64(i)*8, base)
	}
	p.Persist(anchor, anchorSize)
	p.Store64(p.RootSlot(rootSlot), anchor)
	p.Persist(p.RootSlot(rootSlot), 8)
	return e, nil
}

// Attach opens an engine previously created on the pool (after restart or
// crash). Register all txfuncs, then call Recover. Anchor corruption fails
// the whole Attach (there is no engine to speak of without it); per-slot log
// corruption quarantines just that slot, so one damaged thread cannot take
// the whole pool down.
func Attach(p *nvm.Pool, a *pmem.Allocator, opts Options) (*Engine, error) {
	opts.fill()
	anchor := p.Load64(p.RootSlot(rootSlot))
	if anchor == 0 || anchor+24 > p.Size() || p.Load64(anchor) != anchorMagic {
		return nil, errors.New("clobber: pool has no clobber engine")
	}
	n := int(p.Load64(anchor + 8))
	if n <= 0 || n > txn.MaxSlots {
		return nil, fmt.Errorf("clobber: corrupt anchor: %d slots", n)
	}
	if anchor+24+uint64(n)*8 > p.Size() {
		return nil, errors.New("clobber: corrupt anchor: slot table outside pool")
	}
	opts.Slots = n
	opts.ArgsCap = p.Load64(anchor + 16)
	if opts.ArgsCap > p.Size() {
		return nil, fmt.Errorf("clobber: corrupt anchor: args cap %#x", opts.ArgsCap)
	}
	e := &Engine{pool: p, alloc: a, opts: opts}
	e.probe = obs.NewProbe(e.Name())

	hdrSize := uint64(offArgs) + opts.ArgsCap
	dlogOff := align8(hdrSize)
	for i := 0; i < n; i++ {
		base := p.Load64(anchor + 24 + uint64(i)*8)
		s := &slot{id: i, hdr: base}
		e.slots = append(e.slots, s)
		dlog, err := plog.AttachDataLog(p, i, base+dlogOff)
		if err != nil {
			e.quarantine(s, fmt.Errorf("clobber: slot %d: %w", i, err))
			continue
		}
		alogOff := dlogOff + plog.DataLogSize(dlogCapOf(p, base+dlogOff))
		alog, err := plog.AttachAddrLog(p, i, base+alogOff)
		if err != nil {
			e.quarantine(s, fmt.Errorf("clobber: slot %d: %w", i, err))
			continue
		}
		flogOff := alogOff + plog.AddrLogSize(int(alogCapOf(p, base+alogOff)))
		flog, err := plog.AttachAddrLog(p, i, base+flogOff)
		if err != nil {
			e.quarantine(s, fmt.Errorf("clobber: slot %d: %w", i, err))
			continue
		}
		s.dlog, s.alog, s.flog = dlog, alog, flog
		s.seq = p.Load64(base+offStatus) >> 2
	}
	return e, nil
}

// quarantine sets a slot aside with the given cause (first cause wins).
func (e *Engine) quarantine(s *slot, err error) {
	if s.quarantined == nil {
		s.quarantined = err
		e.stats.Quarantined.Add(1)
	}
}

func dlogCapOf(p *nvm.Pool, base uint64) uint64 { return p.Load64(base + 8) }
func alogCapOf(p *nvm.Pool, base uint64) uint64 { return p.Load64(base + 8) }

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// Name implements txn.Engine.
func (e *Engine) Name() string {
	if e.opts.Conservative {
		return "clobber-conservative"
	}
	return "clobber"
}

// Register implements txn.Engine.
func (e *Engine) Register(name string, fn txn.TxFunc) { e.reg.Register(name, fn) }

// Stats implements txn.Engine.
func (e *Engine) Stats() *txn.Stats { return &e.stats }

// Pool returns the engine's pool (for examples and harnesses).
func (e *Engine) Pool() *nvm.Pool { return e.pool }

// Allocator returns the engine's persistent allocator.
func (e *Engine) Allocator() *pmem.Allocator { return e.alloc }

// Run implements txn.Engine: it executes the registered txfunc
// failure-atomically on the given worker slot.
func (e *Engine) Run(slotID int, name string, args *txn.Args) error {
	fn, err := e.reg.Lookup(name)
	if err != nil {
		return err
	}
	if err := txn.CheckSlot(slotID); err != nil || slotID >= len(e.slots) {
		return fmt.Errorf("%w: %d (engine has %d)", txn.ErrBadSlot, slotID, len(e.slots))
	}
	s := e.slots[slotID]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantined != nil {
		return fmt.Errorf("%w: clobber slot %d: %v", txn.ErrSlotQuarantined, s.id, s.quarantined)
	}
	return e.runLocked(s, name, args, fn, false)
}

func (e *Engine) runLocked(s *slot, name string, args *txn.Args, fn txn.TxFunc, recovered bool) error {
	if args == nil {
		args = txn.NoArgs
	}
	sp := e.probe.Start(s.id, name)
	seq := s.seq + 1
	if err := e.begin(s, seq, name, args, &sp); err != nil {
		return err
	}
	sp.BeginDone(seq)
	s.seq = seq
	s.dlog.Reset()
	s.alog.Reset()
	s.flog.Reset()

	m := newMem(e, s, seq)
	if err := fn(m, args); err != nil {
		if m.stored {
			panic(fmt.Errorf("%w: txfunc %q: %v", ErrDirtyAbort, name, err))
		}
		// No persistent effects yet: the transaction trivially aborts.
		e.setStatus(s, seq, phaseIdle)
		sp.Aborted()
		return err
	}
	sp.ExecDone()
	e.commit(s, seq, m, &sp)
	e.stats.Committed.Add(1)
	if recovered {
		e.stats.Recovered.Add(1)
	}
	sp.Committed(recovered)
	return nil
}

// begin writes the v_log entry: txfunc name, encoded arguments and a
// checksum binding them to this sequence, then the ongoing status word —
// all flushed together and ordered by a single fence.
func (e *Engine) begin(s *slot, seq uint64, name string, args *txn.Args, sp *obs.Span) error {
	if len(name) > maxNameLen {
		return fmt.Errorf("clobber: txfunc name %q exceeds %d bytes", name, maxNameLen)
	}
	encLen := args.EncodedSize()
	if uint64(encLen) > e.opts.ArgsCap {
		return fmt.Errorf("%w: %d arg bytes (cap %d)", ErrTxTooLarge, encLen, e.opts.ArgsCap)
	}
	p := e.pool
	if !e.opts.DisableVLog {
		// Stage the whole v_log entry — status word, name, args and
		// checksum — and write it with a single Store; one flush set and
		// one fence order it, preserving §5.3's two-fences-per-transaction
		// property at a fraction of the old per-field store traffic. The
		// arguments serialize straight into the staging buffer.
		total := offArgs + encLen
		if cap(s.vbuf) < total {
			s.vbuf = make([]byte, offArgs+int(e.opts.ArgsCap))
		}
		buf := s.vbuf[:total]
		clear(buf[:offArgs])
		enc := args.AppendEncoded(buf[offArgs:offArgs])
		putU64(buf[offStatus:], seq<<2|phaseOngoing)
		putU64(buf[offNameLen:], uint64(len(name)))
		copy(buf[offName:offName+maxNameLen], name)
		putU64(buf[offArgsLen:], uint64(len(enc)))
		putU64(buf[offVLogChecksum:], vlogChecksum(seq, name, enc))
		p.Store(s.hdr, buf)
		p.FlushOpt(s.hdr, uint64(total))
		p.CommitFence()
		e.stats.VLogEntries.Add(1)
		e.stats.VLogBytes.Add(int64(len(name) + len(enc)))
		sp.VLogAppend(len(name) + len(enc))
	}
	return nil
}

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// vlogChecksum binds a v_log entry's name and encoded arguments to its
// sequence number. The argument blob dominates the input (values run to
// hundreds of bytes), so it is folded eight bytes per round; the checksum
// only ever guards entries written and verified by this code, never an
// external format.
func vlogChecksum(seq uint64, name string, enc []byte) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ seq
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h ^= 0xabcd
	for len(enc) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(enc)) * 0x100000001b3
		h ^= h >> 29
		enc = enc[8:]
	}
	var tail uint64
	for i := len(enc) - 1; i >= 0; i-- {
		tail = tail<<8 | uint64(enc[i])
	}
	h = (h ^ tail ^ uint64(len(enc))<<56) * 0x100000001b3
	h ^= h >> 32
	return h
}

// commit flushes the transaction's outputs, marks the transaction committed
// (one fence), then applies deferred frees.
func (e *Engine) commit(s *slot, seq uint64, m *mem, sp *obs.Span) {
	p := e.pool
	p.FlushOptLines(m.t.dirty)
	p.CommitFence()
	sp.FlushFence(len(m.t.dirty))

	if m.frees > 0 {
		e.setStatus(s, seq, phaseFreeing)
		e.applyFrees(s, seq, 0)
	}
	e.setStatus(s, seq, phaseIdle)
}

func (e *Engine) setStatus(s *slot, seq uint64, phase uint64) {
	if e.opts.DisableVLog {
		return
	}
	p := e.pool
	p.Store64(s.hdr+offStatus, seq<<2|phase)
	p.CommitPersist(s.hdr+offStatus, 8)
}

// applyFrees performs the deferred frees recorded in the free log, bumping a
// persistent progress counter *before* each free so a crash can only leak,
// never double-free.
func (e *Engine) applyFrees(s *slot, seq uint64, from uint64) {
	e.applyFreeList(s, s.flog.Scan(seq), from)
}

func (e *Engine) applyFreeList(s *slot, addrs []uint64, from uint64) {
	p := e.pool
	for i := from; i < uint64(len(addrs)); i++ {
		p.Store64(s.hdr+offFreeApplied, i+1)
		p.CommitPersist(s.hdr+offFreeApplied, 8)
		if err := e.alloc.Free(addrs[i]); err != nil {
			// A corrupt free is a programming error surfaced at commit;
			// leaking is the only safe continuation.
			continue
		}
	}
}

// RunRO implements txn.Engine. Clobber-NVM does not interpose on reads (its
// key advantage over redo systems), so read-only operations access the pool
// directly.
func (e *Engine) RunRO(slotID int, fn txn.ROFunc) error {
	if err := txn.CheckSlot(slotID); err != nil {
		return err
	}
	return fn(roMem{e.pool})
}

// Recover implements txn.Engine; see RecoverReport for the full outcome.
func (e *Engine) Recover() (int, error) {
	rep, err := e.RecoverReport()
	return rep.Recovered, err
}

// slotOutcome classifies what recoverSlot did with one slot.
type slotOutcome int

const (
	outcomeIdle slotOutcome = iota
	outcomeReexecuted
	outcomeFreesResumed
	outcomeQuarantined
)

// RecoverReport implements txn.RecoveryReporter (§4.3, hardened). For every
// slot with an ongoing transaction it (1) restores clobbered inputs from the
// clobber_log, (2) reclaims the interrupted execution's allocations,
// (3) re-executes the transaction via the registered txfunc with the
// arguments restored from the v_log. Slots interrupted while applying
// deferred frees resume them.
//
// Corrupt logs never panic: a slot whose v_log or clobber_log fails
// validation is quarantined — its persistent state is left untouched and
// Run on it returns txn.ErrSlotQuarantined — and recovery of the remaining
// slots proceeds. The returned error is reserved for conditions that make
// the engine unusable (a missing txfunc registration, a failing
// re-execution); a simulated-crash panic (nvm.ErrCrash) still propagates so
// crash-during-recovery harnesses keep working.
//
// Slots recover concurrently: the paper notes this is valid because the
// strong strict 2PL contract makes ongoing transactions' lock sets — and
// hence their footprints — disjoint ("Clobber-NVM recovers each thread
// independently").
func (e *Engine) RecoverReport() (txn.RecoveryReport, error) {
	var (
		mu         sync.Mutex
		rep        txn.RecoveryReport
		firstErr   error
		firstPanic any
		wg         sync.WaitGroup
	)
	rep.Slots = len(e.slots)
	for _, s := range e.slots {
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Re-raise simulated crash injections on the calling
					// goroutine so harnesses can catch them; convert any
					// other panic (out-of-range address from a damaged log,
					// codec panic on garbage bytes) into a quarantine.
					if err, ok := r.(error); ok && errors.Is(err, nvm.ErrCrash) {
						mu.Lock()
						if firstPanic == nil {
							firstPanic = r
						}
						mu.Unlock()
						return
					}
					e.quarantine(s, fmt.Errorf("%w: clobber slot %d: recovery panic: %v", txn.ErrCorruptLog, s.id, r))
				}
			}()
			out, err := e.recoverSlot(s)
			mu.Lock()
			defer mu.Unlock()
			switch out {
			case outcomeReexecuted:
				rep.Recovered++
				rep.Reexecuted++
			case outcomeFreesResumed:
				rep.FreesResumed++
			}
			if err != nil && out != outcomeQuarantined && firstErr == nil {
				firstErr = err
			}
		}(s)
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
	for _, s := range e.slots {
		if s.quarantined != nil {
			rep.Quarantined++
			rep.Errors = append(rep.Errors, s.quarantined)
		}
	}
	return rep, firstErr
}

func (e *Engine) recoverSlot(s *slot) (slotOutcome, error) {
	if s.quarantined != nil {
		return outcomeQuarantined, s.quarantined
	}
	p := e.pool
	status := p.Load64(s.hdr + offStatus)
	seq, phase := status>>2, status&3
	s.seq = seq
	switch phase {
	case phaseIdle:
		return outcomeIdle, nil
	case phaseFreeing:
		// The transaction had committed; only its deferred frees remain.
		// The commit fence ordered every free-log entry before the freeing
		// status, so the strict scan's valid-after-invalid test is sound.
		addrs, err := s.flog.ScanStrict(seq)
		if err != nil {
			e.quarantine(s, fmt.Errorf("clobber: slot %d: free log: %w", s.id, err))
			return outcomeQuarantined, s.quarantined
		}
		e.applyFreeList(s, addrs, p.Load64(s.hdr+offFreeApplied))
		e.setStatus(s, seq, phaseIdle)
		return outcomeFreesResumed, nil
	case phaseOngoing:
		// Handled below.
	default:
		// The status word persists atomically (one aligned 8-byte store),
		// so an undefined phase cannot come from a torn write.
		e.quarantine(s, fmt.Errorf("%w: clobber slot %d: undefined phase %d", txn.ErrCorruptLog, s.id, phase))
		return outcomeQuarantined, s.quarantined
	}

	// Ongoing: validate the v_log entry.
	var (
		vlogOK  bool
		nameBuf []byte
		enc     []byte
	)
	nameLen := p.Load64(s.hdr + offNameLen)
	argsLen := p.Load64(s.hdr + offArgsLen)
	if nameLen <= maxNameLen && argsLen <= e.opts.ArgsCap {
		nameBuf = make([]byte, nameLen)
		p.Load(s.hdr+offName, nameBuf)
		enc = make([]byte, argsLen)
		if argsLen > 0 {
			p.Load(s.hdr+offArgs, enc)
		}
		vlogOK = p.Load64(s.hdr+offVLogChecksum) == vlogChecksum(seq, string(nameBuf), enc)
	}

	// Clobber appends are fenced per entry, so the strict scan is sound.
	entries, scanErr := s.dlog.ScanStrict(seq)
	if !vlogOK {
		if scanErr != nil || len(entries) > 0 {
			// Clobber entries exist for this sequence (or the log shows
			// post-hoc damage). Sequence numbers are never reused across
			// attempts, and logClobber only runs after begin's fence — so
			// a valid v_log entry WAS durable and has since been damaged.
			e.quarantine(s, fmt.Errorf("%w: clobber slot %d: v_log checksum mismatch for seq %d with %d clobber entries",
				txn.ErrCorruptLog, s.id, seq, len(entries)))
			return outcomeQuarantined, s.quarantined
		}
		// Torn begin: the fence never completed, the transaction performed
		// no persistent writes. Clear and move on. (A corrupted v_log of a
		// transaction with zero clobber entries is indistinguishable from
		// this case; the slot state stays consistent either way, only the
		// re-execution is lost.)
		e.setStatus(s, seq, phaseIdle)
		return outcomeIdle, nil
	}
	if scanErr != nil {
		e.quarantine(s, fmt.Errorf("clobber: slot %d: clobber log: %w", s.id, scanErr))
		return outcomeQuarantined, s.quarantined
	}
	// Checksummed entries carry the addresses they were logged with, but
	// verify bounds before touching memory all the same.
	for _, en := range entries {
		end := en.Addr + uint64(len(en.Data))
		if end > p.Size() || end < en.Addr {
			e.quarantine(s, fmt.Errorf("%w: clobber slot %d: log entry addresses [%#x,%#x) outside pool",
				txn.ErrCorruptLog, s.id, en.Addr, end))
			return outcomeQuarantined, s.quarantined
		}
	}

	// 1. Restore clobbered inputs (reverse order, then one fence).
	for i := len(entries) - 1; i >= 0; i-- {
		p.Store(entries[i].Addr, entries[i].Data)
		p.FlushOpt(entries[i].Addr, uint64(len(entries[i].Data)))
	}
	if len(entries) > 0 {
		p.Fence()
	}

	// 2. Reclaim the interrupted execution's allocations so re-execution
	// does not leak. Progress counter first: crash here leaks, never
	// double-frees. (Plain scan: the alloc log is best-effort/unfenced, so
	// the strict scan's soundness argument does not apply to it.)
	allocs := s.alog.Scan(seq)
	for i := p.Load64(s.hdr + offReclaimApplied); i < uint64(len(allocs)); i++ {
		p.Store64(s.hdr+offReclaimApplied, i+1)
		p.Persist(s.hdr+offReclaimApplied, 8)
		if err := e.alloc.Free(allocs[i]); err != nil {
			continue
		}
	}

	// 3. Re-execute.
	args, err := txn.DecodeArgs(enc)
	if err != nil {
		e.quarantine(s, fmt.Errorf("%w: clobber slot %d: undecodable v_log args: %v", txn.ErrCorruptLog, s.id, err))
		return outcomeQuarantined, s.quarantined
	}
	fn, err := e.reg.Lookup(string(nameBuf))
	if err != nil {
		return outcomeIdle, fmt.Errorf("clobber: slot %d: recovery needs txfunc %q: %w", s.id, nameBuf, err)
	}
	if err := e.runLocked(s, string(nameBuf), args, fn, true); err != nil {
		return outcomeIdle, fmt.Errorf("clobber: slot %d: re-execution of %q failed: %w", s.id, nameBuf, err)
	}
	return outcomeReexecuted, nil
}

// SlotStatus describes one worker slot's persistent recovery state, for
// operational inspection (cmd tools, tests, post-crash triage).
type SlotStatus struct {
	// Slot is the worker slot id.
	Slot int
	// Seq is the slot's current transaction sequence number.
	Seq uint64
	// Phase is "idle", "ongoing" or "freeing".
	Phase string
	// TxFunc is the v_log-recorded function name (ongoing slots only).
	TxFunc string
	// ArgBytes is the encoded argument size in the v_log.
	ArgBytes int
	// ClobberEntries counts valid clobber_log records for Seq.
	ClobberEntries int
}

// SlotStatuses reads every slot's persistent state. Safe to call on an
// attached engine before Recover to see what recovery would do.
func (e *Engine) SlotStatuses() []SlotStatus {
	p := e.pool
	out := make([]SlotStatus, 0, len(e.slots))
	for _, s := range e.slots {
		if s.quarantined != nil {
			out = append(out, SlotStatus{Slot: s.id, Phase: "quarantined"})
			continue
		}
		status := p.Load64(s.hdr + offStatus)
		seq, phase := status>>2, status&3
		st := SlotStatus{Slot: s.id, Seq: seq}
		switch phase {
		case phaseOngoing:
			st.Phase = "ongoing"
			nameLen := p.Load64(s.hdr + offNameLen)
			if nameLen <= maxNameLen {
				buf := make([]byte, nameLen)
				p.Load(s.hdr+offName, buf)
				st.TxFunc = string(buf)
			}
			st.ArgBytes = int(p.Load64(s.hdr + offArgsLen))
			st.ClobberEntries = len(s.dlog.Scan(seq))
		case phaseFreeing:
			st.Phase = "freeing"
		default:
			st.Phase = "idle"
		}
		out = append(out, st)
	}
	return out
}
