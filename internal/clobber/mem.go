package clobber

import (
	"fmt"

	"clobbernvm/internal/nvm"
	"clobbernvm/internal/obs"
	"clobbernvm/internal/plog"
	"clobbernvm/internal/txn"
)

// mem is the in-transaction memory view. Every access runs through it,
// exactly where the Clobber-NVM compiler would have inserted callbacks.
// The access map (flagTable) is the run-time stand-in for the compiler's
// dependency analysis: it classifies each tracked word of the transaction's
// footprint as input, stored and/or logged.
type mem struct {
	e   *Engine
	s   *slot
	seq uint64

	t *flagTable

	stored bool
	frees  int
}

var _ txn.Mem = (*mem)(nil)

func newMem(e *Engine, s *slot, seq uint64) *mem {
	// The access-map table is reused across the slot's transactions (the
	// slot lock is held for the whole Run, so this is race-free).
	if s.ftab == nil {
		s.ftab = newFlagTable()
	} else {
		s.ftab.reset()
	}
	return &mem{e: e, s: s, seq: seq, t: s.ftab}
}

// Load implements txn.Mem.
func (m *mem) Load(addr uint64, buf []byte) {
	m.trackLoad(addr, uint64(len(buf)))
	m.e.pool.Load(addr, buf)
}

// Load64 implements txn.Mem.
func (m *mem) Load64(addr uint64) uint64 {
	m.trackLoad(addr, 8)
	return m.e.pool.Load64(addr)
}

// lineWords maps the unit range [u1,u2] restricted to line l onto the
// packed per-word mask used by flagTable.
func lineWords(l, u1, u2 uint64) uint32 {
	lo, hi := uint64(0), uint64(7)
	if l == u1>>3 {
		lo = u1 & 7
	}
	if l == u2>>3 {
		hi = u2 & 7
	}
	return uint32(0xff) >> (7 - (hi - lo)) << lo
}

func (m *mem) trackLoad(addr, n uint64) {
	if n == 0 {
		return
	}
	// With the clobber_log disabled (No-log / v_log-only variants of §5.3)
	// there is nothing to detect, so the baseline pays no tracking.
	if m.e.opts.DisableClobberLog {
		return
	}
	// Conservative identification cannot prove a read is dominated by the
	// transaction's own store (the "unexposed" pattern), so every load marks
	// its units as candidate inputs; refined identification skips units this
	// transaction already stored.
	conservative := m.e.opts.Conservative
	u1, u2 := addr>>3, (addr+n-1)>>3
	for l := u1 >> 3; l <= u2>>3; l++ {
		m.t.markInput(l, lineWords(l, u1, u2), conservative)
	}
}

// Store implements txn.Mem. It detects clobber writes and logs the old
// value before applying the store — the clobber_log callback of §4.2.
func (m *mem) Store(addr uint64, data []byte) {
	m.preStore(addr, uint64(len(data)))
	m.e.pool.Store(addr, data)
}

// Store64 implements txn.Mem.
func (m *mem) Store64(addr uint64, v uint64) {
	m.preStore(addr, 8)
	m.e.pool.Store64(addr, v)
}

func (m *mem) preStore(addr, n uint64) {
	if n == 0 {
		return
	}
	m.stored = true
	needLog := false
	u1, u2 := addr>>3, (addr+n-1)>>3
	for l := u1 >> 3; l <= u2>>3; l++ {
		wmask := lineWords(l, u1, u2)
		old := m.t.markStored(l, wmask)
		if clob := old & wmask; clob != 0 {
			// Conservative identification lacks the "shadowed" refinement:
			// it cannot prove an earlier clobber write already covered this
			// unit, so it logs again (the in-loops pattern of Figure 5).
			if m.e.opts.Conservative || clob&^(old>>flagsLoggedShift) != 0 {
				needLog = true
			}
		}
	}
	if needLog && !m.e.opts.DisableClobberLog {
		m.logClobber(addr, n)
	}
}

// logClobber records the pre-store value of [addr, addr+n) in the
// clobber_log (one flush set + one fence, the PMDK undo-log discipline) and
// marks the covered units logged so shadowed writes skip the log.
func (m *mem) logClobber(addr, n uint64) {
	old := make([]byte, n)
	m.e.pool.Load(addr, old)
	// The entry's fence is issued through CommitFence so concurrent
	// transactions' log-ordering fences can share one epoch; the blocking
	// contract is unchanged (the entry is durable before the store that
	// clobbers it executes).
	nbytes, err := m.s.dlog.Append(m.seq, addr, old, plog.AppendOptions{NoFence: true})
	if err != nil {
		panic(fmt.Errorf("%w: %v", ErrTxTooLarge, err))
	}
	m.e.pool.CommitFence()
	m.e.stats.LogEntries.Add(1)
	m.e.stats.LogBytes.Add(int64(nbytes))
	m.e.probe.LogAppend(obs.KindClobberLog, m.s.id, m.seq, nbytes)
	u1, u2 := addr>>3, (addr+n-1)>>3
	for l := u1 >> 3; l <= u2>>3; l++ {
		m.t.markLogged(l, lineWords(l, u1, u2))
	}
}

// Alloc implements txn.Mem (the pmalloc callback). The allocation is
// recorded (best effort) so recovery can reclaim it before re-execution.
func (m *mem) Alloc(size uint64) (txn.Addr, error) {
	addr, err := m.e.alloc.Alloc(m.s.id, size)
	if err != nil {
		return 0, err
	}
	if !m.e.opts.DisableVLog {
		if err := m.s.alog.Append(m.seq, addr, false); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrTxTooLarge, err)
		}
	}
	return addr, nil
}

// Free implements txn.Mem. Frees are deferred to commit so an interrupted
// transaction can still read the memory during re-execution.
func (m *mem) Free(addr txn.Addr) error {
	if err := m.s.flog.Append(m.seq, addr, false); err != nil {
		return fmt.Errorf("%w: %v", ErrTxTooLarge, err)
	}
	m.frees++
	return nil
}

// roMem is the read-only view used by RunRO: direct pool reads, no
// interposition — undo-family engines pay nothing on the read path.
type roMem struct{ pool *nvm.Pool }

var _ txn.Mem = roMem{}

func (r roMem) Load(addr uint64, buf []byte) { r.pool.Load(addr, buf) }
func (r roMem) Load64(addr uint64) uint64    { return r.pool.Load64(addr) }
func (r roMem) Store(addr uint64, data []byte) {
	panic("clobber: store inside a read-only operation")
}
func (r roMem) Store64(addr uint64, v uint64) {
	panic("clobber: store inside a read-only operation")
}
func (r roMem) Alloc(size uint64) (txn.Addr, error) {
	return 0, fmt.Errorf("clobber: alloc inside a read-only operation")
}
func (r roMem) Free(addr txn.Addr) error {
	return fmt.Errorf("clobber: free inside a read-only operation")
}
