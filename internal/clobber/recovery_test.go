package clobber

import (
	"errors"
	"fmt"
	"testing"

	"clobbernvm/internal/nvm"
	"clobbernvm/internal/txn"
)

// TestRecoverIsIdempotent runs Recover twice; the second pass must be a
// no-op (re-running recovery after a clean recovery is a normal operational
// mistake the engine has to tolerate).
func TestRecoverIsIdempotent(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	crashDuring(t, p, func() error {
		return e.Run(0, "push", txn.NewArgs().PutUint64(1))
	}, pushStores(t, 0)-1)

	e2 := reopen(t, p)
	registerPush(e2, head)
	n1, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second Recover recovered %d transactions", n2)
	}
	want := n1
	if got := len(listValues(p, head)); got != want {
		t.Fatalf("list has %d nodes, want %d", got, want)
	}
}

// TestCrashDuringRecoveryReexecution crashes the machine a second time while
// recovery is re-executing the interrupted transaction, then recovers again.
// The final state must still be all-or-nothing.
func TestCrashDuringRecoveryReexecution(t *testing.T) {
	for second := int64(1); second <= 25; second += 2 {
		p, e := newEngine(t, Options{})
		head := p.RootSlot(listHeadSlot)
		registerPush(e, head)
		if err := e.Run(0, "push", txn.NewArgs().PutUint64(1)); err != nil {
			t.Fatal(err)
		}
		// First crash mid-push.
		crashDuring(t, p, func() error {
			return e.Run(0, "push", txn.NewArgs().PutUint64(2))
		}, pushStores(t, 1)-1)

		// First recovery attempt, crashed again mid-way.
		e2 := reopen(t, p)
		registerPush(e2, head)
		p.ScheduleCrash(second)
		secondFired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !errors.Is(asErr(r), nvm.ErrCrash) {
						panic(r)
					}
					secondFired = true
				}
			}()
			_, _ = e2.Recover()
		}()
		p.ScheduleCrash(0)

		// Second recovery must complete regardless.
		e3 := reopen(t, p)
		registerPush(e3, head)
		if _, err := e3.Recover(); err != nil {
			t.Fatalf("second crash at %d (fired=%v): %v", second, secondFired, err)
		}
		got := fmt.Sprint(listValues(p, head))
		absent := fmt.Sprint([]uint64{1})
		complete := fmt.Sprint([]uint64{2, 1})
		if got != absent && got != complete {
			t.Fatalf("second crash at %d: torn state %v", second, got)
		}
		// Engine stays usable.
		if err := e3.Run(0, "push", txn.NewArgs().PutUint64(3)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryRequiresRegistration checks the operational contract: if the
// txfunc was not re-registered before Recover, the engine reports a clear
// error instead of silently dropping the transaction.
func TestRecoveryRequiresRegistration(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	crashDuring(t, p, func() error {
		return e.Run(0, "push", txn.NewArgs().PutUint64(1))
	}, pushStores(t, 0)-1)

	e2 := reopen(t, p) // deliberately no registerPush
	if _, err := e2.Recover(); !errors.Is(err, txn.ErrUnknownTxFunc) {
		t.Fatalf("Recover without registration: err = %v", err)
	}
	// Registering and retrying succeeds.
	registerPush(e2, head)
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
}

// TestLargeTransactionManyClobbers stresses log capacity accounting with a
// transaction that clobbers hundreds of distinct words.
func TestLargeTransactionManyClobbers(t *testing.T) {
	p, e := newEngine(t, Options{DataLogCap: 1 << 20})
	base := p.RootSlot(3)
	arrSlot := base
	e.Register("initarr", func(m txn.Mem, args *txn.Args) error {
		arr, err := m.Alloc(8 * 512)
		if err != nil {
			return err
		}
		for i := uint64(0); i < 512; i++ {
			m.Store64(arr+i*8, i)
		}
		m.Store64(arrSlot, arr)
		return nil
	})
	e.Register("incrall", func(m txn.Mem, args *txn.Args) error {
		arr := m.Load64(arrSlot)
		for i := uint64(0); i < 512; i++ {
			m.Store64(arr+i*8, m.Load64(arr+i*8)+1)
		}
		return nil
	})
	if err := e.Run(0, "initarr", txn.NoArgs); err != nil {
		t.Fatal(err)
	}
	s0 := e.Stats().Snapshot()
	if err := e.Run(0, "incrall", txn.NoArgs); err != nil {
		t.Fatal(err)
	}
	d := e.Stats().Snapshot().Sub(s0)
	if d.LogEntries != 512 {
		t.Fatalf("clobber entries = %d, want 512", d.LogEntries)
	}
	// Crash mid-transaction and verify recovery restores + re-executes.
	crashDuring(t, p, func() error {
		return e.Run(0, "incrall", txn.NoArgs)
	}, 900)
	e2 := reopen(t, p)
	e2.Register("incrall", func(m txn.Mem, args *txn.Args) error {
		arr := m.Load64(arrSlot)
		for i := uint64(0); i < 512; i++ {
			m.Store64(arr+i*8, m.Load64(arr+i*8)+1)
		}
		return nil
	})
	rec, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	arr := p.Load64(arrSlot)
	wantDelta := uint64(1 + rec) // first incr + recovered incr (if begun)
	for i := uint64(0); i < 512; i++ {
		if got := p.Load64(arr + i*8); got != i+wantDelta {
			t.Fatalf("slot %d = %d, want %d", i, got, i+wantDelta)
		}
	}
}

// TestTxTooLargeSurfaces ensures log exhaustion panics with ErrTxTooLarge
// (the transaction cannot abort, so this is a deliberate hard failure).
func TestTxTooLargeSurfaces(t *testing.T) {
	p, e := newEngine(t, Options{DataLogCap: 512})
	cell := p.RootSlot(3)
	e.Register("huge", func(m txn.Mem, args *txn.Args) error {
		for i := uint64(0); i < 64; i++ {
			v := m.Load64(cell + i*8)
			m.Store64(cell+i*8, v+1) // clobber per word: overflows 512 B log
		}
		return nil
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected ErrTxTooLarge panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrTxTooLarge) {
			t.Fatalf("panic = %v", r)
		}
	}()
	_ = e.Run(0, "huge", txn.NoArgs)
}

// TestSlotStatuses inspects persistent slot state before and after recovery.
func TestSlotStatuses(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	crashDuring(t, p, func() error {
		return e.Run(1, "push", txn.NewArgs().PutUint64(9))
	}, pushStores(t, 0)-1)

	e2 := reopen(t, p)
	registerPush(e2, head)
	sts := e2.SlotStatuses()
	var ongoing *SlotStatus
	for i := range sts {
		if sts[i].Phase == "ongoing" {
			if ongoing != nil {
				t.Fatal("multiple ongoing slots from a single crash")
			}
			ongoing = &sts[i]
		}
	}
	if ongoing == nil {
		t.Fatal("no ongoing slot visible before recovery")
	}
	if ongoing.Slot != 1 || ongoing.TxFunc != "push" || ongoing.ArgBytes == 0 {
		t.Fatalf("ongoing slot = %+v", *ongoing)
	}

	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, st := range e2.SlotStatuses() {
		if st.Phase != "idle" {
			t.Fatalf("slot %d still %s after recovery", st.Slot, st.Phase)
		}
	}
}
