package clobber

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlagTableBasic(t *testing.T) {
	ft := newFlagTable()
	if got := ft.get(42); got != 0 {
		t.Fatalf("empty get = %d", got)
	}
	if old := ft.or(42, flagInput); old != 0 {
		t.Fatalf("first or returned %d", old)
	}
	if got := ft.get(42); got != flagInput {
		t.Fatalf("get = %d", got)
	}
	if old := ft.or(42, flagStored); old != flagInput {
		t.Fatalf("second or returned %d", old)
	}
	if got := ft.get(42); got != flagInput|flagStored {
		t.Fatalf("get = %d", got)
	}
}

func TestFlagTableZeroKey(t *testing.T) {
	// Word index 0 must be storable (keys are offset by one internally).
	ft := newFlagTable()
	ft.or(0, flagLogged)
	if got := ft.get(0); got != flagLogged {
		t.Fatalf("get(0) = %d", got)
	}
}

func TestFlagTableGrowth(t *testing.T) {
	ft := newFlagTable()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		ft.or(i*3, uint8(1+i%7))
	}
	for i := uint64(0); i < n; i++ {
		if got := ft.get(i * 3); got != uint8(1+i%7) {
			t.Fatalf("after growth get(%d) = %d, want %d", i*3, got, 1+i%7)
		}
	}
	if got := ft.get(1); got != 0 {
		t.Fatalf("absent key = %d", got)
	}
}

func TestFlagTableMatchesMapReference(t *testing.T) {
	f := func(ops []uint16) bool {
		ft := newFlagTable()
		ref := map[uint64]uint8{}
		for _, op := range ops {
			u := uint64(op >> 3)
			bits := uint8(1 << (op % 3))
			wantOld := ref[u]
			gotOld := ft.or(u, bits)
			if gotOld != wantOld {
				return false
			}
			ref[u] |= bits
		}
		for u, want := range ref {
			if ft.get(u) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagTableDirtyLineDedup(t *testing.T) {
	ft := newFlagTable()
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		l := uint64(rng.Intn(600))
		ft.markLine(l)
		seen[l] = true
	}
	if len(ft.dirty) != len(seen) {
		t.Fatalf("dirty lines = %d, want %d (dedup broken)", len(ft.dirty), len(seen))
	}
	got := map[uint64]bool{}
	for _, l := range ft.dirty {
		if got[l] {
			t.Fatalf("line %d recorded twice", l)
		}
		got[l] = true
		if !seen[l] {
			t.Fatalf("phantom line %d", l)
		}
	}
}
