package clobber

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// val reads a line's packed value without mutating the table.
func (t *flagTable) val(line uint64) uint32 {
	k := line + 1
	i := mixHash(k) & t.mask
	for {
		if t.gen[i] != t.cur {
			return 0
		}
		if t.keys[i] == k {
			return t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

func TestFlagTableBasic(t *testing.T) {
	ft := newFlagTable()
	if got := ft.val(42); got != 0 {
		t.Fatalf("empty val = %#x", got)
	}
	ft.markInput(42, 0b0001, false)
	if got := ft.val(42); got != 0b0001 {
		t.Fatalf("val after markInput = %#x", got)
	}
	if old := ft.markStored(42, 0b0011); old != 0b0001 {
		t.Fatalf("markStored returned %#x", old)
	}
	if got := ft.val(42); got != 0b0011<<flagsStoredShift|0b0001 {
		t.Fatalf("val = %#x", got)
	}
	// Refined input marking skips stored words.
	ft.markInput(42, 0b0110, false)
	if got := ft.val(42); got != 0b0011<<flagsStoredShift|0b0101 {
		t.Fatalf("val after refined markInput = %#x", got)
	}
	// Conservative marks them anyway.
	ft.markInput(42, 0b0010, true)
	if got := ft.val(42); got != 0b0011<<flagsStoredShift|0b0111 {
		t.Fatalf("val after conservative markInput = %#x", got)
	}
	ft.markLogged(42, 0b0100)
	if got := ft.val(42); got != 0b0100<<flagsLoggedShift|0b0011<<flagsStoredShift|0b0111 {
		t.Fatalf("val after markLogged = %#x", got)
	}
}

func TestFlagTableZeroKey(t *testing.T) {
	// Line index 0 must be storable (keys are offset by one internally).
	ft := newFlagTable()
	ft.markLogged(0, 0b1000)
	if got := ft.val(0); got != 0b1000<<flagsLoggedShift {
		t.Fatalf("val(0) = %#x", got)
	}
}

func TestFlagTableGrowth(t *testing.T) {
	ft := newFlagTable()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		ft.markInput(i*3, uint32(1<<(i%8)), true)
	}
	for i := uint64(0); i < n; i++ {
		if got := ft.val(i * 3); got != uint32(1<<(i%8)) {
			t.Fatalf("after growth val(%d) = %#x, want %#x", i*3, got, 1<<(i%8))
		}
	}
	if got := ft.val(1); got != 0 {
		t.Fatalf("absent key = %#x", got)
	}
}

func TestFlagTableMatchesMapReference(t *testing.T) {
	f := func(ops []uint16) bool {
		ft := newFlagTable()
		type ref struct{ input, stored, logged uint32 }
		refs := map[uint64]*ref{}
		at := func(l uint64) *ref {
			r := refs[l]
			if r == nil {
				r = &ref{}
				refs[l] = r
			}
			return r
		}
		for _, op := range ops {
			l := uint64(op >> 5)
			wmask := uint32(1 << (op % 8))
			r := at(l)
			switch op % 3 {
			case 0: // refined load
				ft.markInput(l, wmask, false)
				r.input |= wmask &^ r.stored
			case 1: // store
				old := ft.markStored(l, wmask)
				want := r.logged<<flagsLoggedShift | r.stored<<flagsStoredShift | r.input
				if old != want {
					return false
				}
				r.stored |= wmask
			case 2: // logged
				ft.markLogged(l, wmask)
				r.logged |= wmask
			}
		}
		for l, r := range refs {
			want := r.logged<<flagsLoggedShift | r.stored<<flagsStoredShift | r.input
			if ft.val(l) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagTableDirtyLineDedup(t *testing.T) {
	ft := newFlagTable()
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		l := uint64(rng.Intn(600))
		ft.markStored(l, uint32(1<<rng.Intn(8)))
		seen[l] = true
	}
	if len(ft.dirty) != len(seen) {
		t.Fatalf("dirty lines = %d, want %d (dedup broken)", len(ft.dirty), len(seen))
	}
	got := map[uint64]bool{}
	for _, l := range ft.dirty {
		if got[l] {
			t.Fatalf("line %d recorded twice", l)
		}
		got[l] = true
		if !seen[l] {
			t.Fatalf("phantom line %d", l)
		}
	}
}

func TestFlagTableReset(t *testing.T) {
	ft := newFlagTable()
	for i := uint64(0); i < 1000; i++ {
		ft.markStored(i, 0xff)
	}
	ft.reset()
	if len(ft.dirty) != 0 || ft.n != 0 {
		t.Fatalf("reset left dirty=%d n=%d", len(ft.dirty), ft.n)
	}
	for i := uint64(0); i < 1000; i++ {
		if got := ft.val(i); got != 0 {
			t.Fatalf("val(%d) = %#x after reset", i, got)
		}
	}
	// Table stays usable after reset.
	if old := ft.markStored(7, 0b1); old != 0 {
		t.Fatalf("markStored after reset returned %#x", old)
	}
}
