package clobber

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/txn"
)

// registerTorn registers a two-clobber txfunc; with explode it simulates a
// power loss after both clobber stores, leaving the slot mid-transaction
// with a persisted v_log and two clobber_log entries.
func registerTorn(e *Engine, head uint64, explode bool) {
	e.Register("torn", func(m txn.Mem, args *txn.Args) error {
		v := m.Load64(head)
		m.Store64(head, v+args.Uint64(0)) // clobber entry 1
		w := m.Load64(head + 8)
		m.Store64(head+8, w+1) // clobber entry 2
		if explode {
			panic(fmt.Errorf("injected power loss: %w", nvm.ErrCrash))
		}
		return nil
	})
}

// tornState cuts power mid-transaction with full eviction (so every log
// byte the engine wrote is durable) and returns the pool and slot 0's base
// address for targeted corruption.
func tornState(t *testing.T) (*nvm.Pool, uint64, uint64) {
	t.Helper()
	p := nvm.New(1<<22, nvm.WithEviction(nvm.EvictAll), nvm.WithSeed(1))
	a, err := pmem.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Create(p, a, Options{Slots: 2, DataLogCap: 1 << 16, ArgsCap: 1024, AllocLogCap: 64, FreeLogCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	head := p.RootSlot(listHeadSlot)
	p.Store64(head, 5)
	p.Store64(head+8, 6)
	p.Persist(head, 16)
	registerTorn(e, head, true)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("torn txfunc did not crash")
			}
			if err, ok := r.(error); !ok || !errors.Is(err, nvm.ErrCrash) {
				panic(r)
			}
		}()
		_ = e.Run(0, "torn", txn.NewArgs().PutUint64(100))
	}()
	p.Crash()
	anchor := p.Load64(p.RootSlot(rootSlot))
	base := p.Load64(anchor + 24)
	argsCap := p.Load64(anchor + 16)
	return p, base, argsCap
}

// reattach reopens the engine stack post-crash with a benign torn txfunc
// (so legitimate re-execution completes instead of re-crashing).
func reattach(t *testing.T, p *nvm.Pool) *Engine {
	t.Helper()
	a, err := pmem.Attach(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Attach(p, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	registerTorn(e, p.RootSlot(listHeadSlot), false)
	registerPush(e, p.RootSlot(listHeadSlot))
	return e
}

// flip durably inverts one byte.
func flip(p *nvm.Pool, addr uint64) {
	var b [1]byte
	p.Load(addr, b[:])
	p.Store(addr, []byte{b[0] ^ 0xff})
	p.Persist(addr, 1)
}

func expectQuarantine(t *testing.T, e *Engine, what string) {
	t.Helper()
	rep, err := e.RecoverReport()
	if err != nil {
		t.Fatalf("%s: RecoverReport returned hard error: %v", what, err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("%s: quarantined = %d, want 1 (report %+v)", what, rep.Quarantined, rep)
	}
	if len(rep.Errors) != 1 || !errors.Is(rep.Errors[0], txn.ErrCorruptLog) {
		t.Fatalf("%s: errors = %v, want one ErrCorruptLog", what, rep.Errors)
	}
	if rep.Recovered != 0 {
		t.Fatalf("%s: recovered = %d from a corrupt slot", what, rep.Recovered)
	}
	// The poisoned slot refuses transactions ...
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(1)); !errors.Is(err, txn.ErrSlotQuarantined) {
		t.Fatalf("%s: Run on quarantined slot = %v, want ErrSlotQuarantined", what, err)
	}
	// ... while healthy slots keep working.
	if err := e.Run(1, "push", txn.NewArgs().PutUint64(2)); err != nil {
		t.Fatalf("%s: Run on healthy slot: %v", what, err)
	}
	if e.Stats().Snapshot().Quarantined != 1 {
		t.Fatalf("%s: stats.Quarantined = %d, want 1", what, e.Stats().Snapshot().Quarantined)
	}
}

func TestRecoveryQuarantinesCorruptVLogArgs(t *testing.T) {
	p, base, _ := tornState(t)
	flip(p, base+offArgs) // first byte of the encoded v_log arguments
	expectQuarantine(t, reattach(t, p), "vlog args")
}

func TestRecoveryQuarantinesCorruptVLogChecksum(t *testing.T) {
	p, base, _ := tornState(t)
	flip(p, base+offVLogChecksum)
	expectQuarantine(t, reattach(t, p), "vlog checksum")
}

func TestRecoveryQuarantinesTornClobberLog(t *testing.T) {
	p, base, argsCap := tornState(t)
	head := p.RootSlot(listHeadSlot)
	headAtCrash := p.Load64(head) // in-place value the crash left behind

	// First clobber_log entry: [hdr 24][payload 8][crc 8] starting at the
	// data log's entry area. Corrupting its payload while the second entry
	// stays valid is exactly the valid-beyond-torn pattern ScanStrict
	// rejects on a fence-ordered log.
	dlogBase := base + align8(offArgs+argsCap)
	flip(p, dlogBase+16+24)

	e := reattach(t, p)
	if _, err := e.RecoverReport(); err != nil {
		t.Fatal(err)
	}
	// Quarantine must happen before ANY input restore: a partial undo of
	// the clobber log would tear the very state it claims to repair.
	if got := p.Load64(head); got != headAtCrash {
		t.Fatalf("quarantined recovery modified user data: head = %d, want %d", got, headAtCrash)
	}
	// RecoverReport is idempotent; the full quarantine contract holds on
	// re-inspection.
	expectQuarantine(t, e, "clobber log")
}

func TestRecoveryTreatsTornBeginAsIdle(t *testing.T) {
	// A crash between the v_log write and its fence can tear the v_log
	// itself; with no clobber_log entries for the sequence this is a torn
	// begin (the transaction provably made no stores), not corruption.
	p := nvm.New(1<<22, nvm.WithEviction(nvm.EvictAll), nvm.WithSeed(1))
	a, err := pmem.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Create(p, a, Options{Slots: 2, DataLogCap: 1 << 16, ArgsCap: 1024, AllocLogCap: 64, FreeLogCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	e.Register("stall", func(m txn.Mem, args *txn.Args) error {
		panic(fmt.Errorf("injected power loss: %w", nvm.ErrCrash))
	})
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); !ok || !errors.Is(err, nvm.ErrCrash) {
					panic(r)
				}
			}
		}()
		_ = e.Run(0, "stall", txn.NewArgs().PutUint64(9))
	}()
	p.Crash()
	anchor := p.Load64(p.RootSlot(rootSlot))
	base := p.Load64(anchor + 24)
	flip(p, base+offArgs) // tear the v_log of the store-less transaction

	e2 := reattach(t, p)
	rep, err := e2.RecoverReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("torn begin quarantined: %+v", rep)
	}
	if err := e2.Run(0, "push", txn.NewArgs().PutUint64(3)); err != nil {
		t.Fatalf("slot unusable after torn begin: %v", err)
	}
}

// TestRecoverNeverPanicsOnGarbage splats random bytes over the slot region
// and requires the whole attach+recover path to fail softly: typed errors
// or quarantines, never a panic — the "arbitrary log bytes" acceptance bar.
func TestRecoverNeverPanicsOnGarbage(t *testing.T) {
	p, base, argsCap := tornState(t)
	img := p.Snapshot()
	span := align8(offArgs+argsCap) + 1<<14 // header + v_log + clobber_log prefix
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if err := p.Restore(img); err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 1+rng.Intn(64))
		rng.Read(junk)
		at := base + uint64(rng.Intn(int(span-uint64(len(junk)))))
		p.Store(at, junk)
		p.Persist(at, uint64(len(junk)))

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: recovery panicked on garbage at %#x: %v", seed, at, r)
				}
			}()
			a, err := pmem.Attach(p)
			if err != nil {
				return // soft failure is acceptable
			}
			e, err := Attach(p, a, Options{})
			if err != nil {
				return
			}
			registerTorn(e, p.RootSlot(listHeadSlot), false)
			_, _ = e.RecoverReport()
		}()
	}
}
