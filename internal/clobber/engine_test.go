package clobber

import (
	"errors"
	"fmt"
	"testing"

	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/txn"
)

// listHeadSlot is the pool root slot the test list anchors its head in.
const listHeadSlot = 2

// registerPush registers a linked-list push txfunc equivalent to the paper's
// Figure 2 list insertion: one clobber write (the head pointer).
func registerPush(e txn.Engine, headAddr uint64) {
	e.Register("push", func(m txn.Mem, args *txn.Args) error {
		val := args.Uint64(0)
		node, err := m.Alloc(16)
		if err != nil {
			return err
		}
		m.Store64(node, val)
		next := m.Load64(headAddr) // head is read here ...
		m.Store64(node+8, next)
		m.Store64(headAddr, node) // ... and clobbered here
		return nil
	})
}

func listValues(p *nvm.Pool, headAddr uint64) []uint64 {
	var out []uint64
	for n := p.Load64(headAddr); n != 0; n = p.Load64(n + 8) {
		out = append(out, p.Load64(n))
		if len(out) > 1_000_000 {
			panic("list cycle")
		}
	}
	return out
}

func newEngine(t *testing.T, opts Options) (*nvm.Pool, *Engine) {
	t.Helper()
	p := nvm.New(1<<24, nvm.WithEvictProbability(0.5), nvm.WithSeed(42))
	a, err := pmem.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Slots == 0 {
		opts.Slots = 4
	}
	e, err := Create(p, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, e
}

func TestCommitDurable(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	for i := uint64(1); i <= 5; i++ {
		if err := e.Run(0, "push", txn.NewArgs().PutUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Crash() // committed transactions must survive
	got := listValues(p, head)
	want := []uint64{5, 4, 3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("list after crash = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list after crash = %v, want %v", got, want)
		}
	}
	if c := e.Stats().Committed.Load(); c != 5 {
		t.Fatalf("Committed = %d", c)
	}
}

func TestClobberDetectionMinimal(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)

	if err := e.Run(0, "push", txn.NewArgs().PutUint64(7)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().Snapshot()
	// Only the head pointer is a clobbered input: writes to the fresh node
	// must NOT be logged.
	if s.LogEntries != 1 {
		t.Fatalf("clobber_log entries = %d, want 1", s.LogEntries)
	}
	if s.VLogEntries != 1 {
		t.Fatalf("v_log entries = %d, want 1", s.VLogEntries)
	}
}

func TestShadowedWritesLoggedOnce(t *testing.T) {
	p, e := newEngine(t, Options{})
	cell := p.RootSlot(3)
	e.Register("loop", func(m txn.Mem, args *txn.Args) error {
		for i := uint64(0); i < 10; i++ {
			v := m.Load64(cell)
			m.Store64(cell, v+1)
		}
		return nil
	})
	if err := e.Run(0, "loop", txn.NoArgs); err != nil {
		t.Fatal(err)
	}
	if n := e.Stats().LogEntries.Load(); n != 1 {
		t.Fatalf("loop clobber entries = %d, want 1 (shadowed refinement)", n)
	}
	if got := p.Load64(cell); got != 10 {
		t.Fatalf("cell = %d", got)
	}
}

func TestConservativeModeLogsMore(t *testing.T) {
	// Write-then-read-then-write: refined analysis knows the read is not an
	// input (unexposed); conservative logs the second write.
	run := func(conservative bool) int64 {
		p, e := newEngine(t, Options{Conservative: conservative})
		cell := p.RootSlot(3)
		e.Register("wrw", func(m txn.Mem, args *txn.Args) error {
			m.Store64(cell, 1)
			v := m.Load64(cell)
			m.Store64(cell, v+1)
			return nil
		})
		if err := e.Run(0, "wrw", txn.NoArgs); err != nil {
			t.Fatal(err)
		}
		return e.Stats().LogEntries.Load()
	}
	refined, conservative := run(false), run(true)
	if refined != 0 {
		t.Fatalf("refined logged %d entries for write-read-write, want 0", refined)
	}
	if conservative < 1 {
		t.Fatalf("conservative logged %d entries, want >= 1", conservative)
	}
}

func TestAbortBeforeStore(t *testing.T) {
	p, e := newEngine(t, Options{})
	boom := errors.New("validation failed")
	e.Register("fail", func(m txn.Mem, args *txn.Args) error {
		_ = m.Load64(p.RootSlot(3))
		return boom
	})
	if err := e.Run(0, "fail", txn.NoArgs); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c := e.Stats().Committed.Load(); c != 0 {
		t.Fatalf("Committed = %d", c)
	}
	// The slot must be reusable.
	registerPush(e, p.RootSlot(listHeadSlot))
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(1)); err != nil {
		t.Fatal(err)
	}
}

func TestAbortAfterStorePanics(t *testing.T) {
	p, e := newEngine(t, Options{})
	e.Register("dirty-fail", func(m txn.Mem, args *txn.Args) error {
		m.Store64(p.RootSlot(3), 9)
		return errors.New("too late")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected ErrDirtyAbort panic")
		} else if err, ok := r.(error); !ok || !errors.Is(err, ErrDirtyAbort) {
			t.Fatalf("panic = %v", r)
		}
	}()
	_ = e.Run(0, "dirty-fail", txn.NoArgs)
}

func TestUnknownTxFunc(t *testing.T) {
	_, e := newEngine(t, Options{})
	if err := e.Run(0, "nope", txn.NoArgs); !errors.Is(err, txn.ErrUnknownTxFunc) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSlot(t *testing.T) {
	_, e := newEngine(t, Options{})
	e.Register("noop", func(txn.Mem, *txn.Args) error { return nil })
	if err := e.Run(-1, "noop", txn.NoArgs); !errors.Is(err, txn.ErrBadSlot) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Run(99, "noop", txn.NoArgs); !errors.Is(err, txn.ErrBadSlot) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRO(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(11)); err != nil {
		t.Fatal(err)
	}
	var got uint64
	err := e.RunRO(0, func(m txn.Mem) error {
		node := m.Load64(head)
		got = m.Load64(node)
		return nil
	})
	if err != nil || got != 11 {
		t.Fatalf("RunRO got %d, err %v", got, err)
	}
	// Stores in RO operations are programming errors.
	defer func() {
		if recover() == nil {
			t.Fatal("RO store did not panic")
		}
	}()
	_ = e.RunRO(0, func(m txn.Mem) error { m.Store64(head, 0); return nil })
}

// reopen simulates a restart: crash the pool, re-attach allocator and engine.
func reopen(t *testing.T, p *nvm.Pool) *Engine {
	t.Helper()
	p.Crash()
	a, err := pmem.Attach(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Attach(p, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecoverReexecutesInterrupted(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)

	for i := uint64(1); i <= 3; i++ {
		if err := e.Run(0, "push", txn.NewArgs().PutUint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash mid-transaction: the txfunc performs several stores; crash on
	// the last one (the clobbering head update).
	crashDuring(t, p, func() error {
		return e.Run(0, "push", txn.NewArgs().PutUint64(4))
	}, pushStores(t, 3)-1)

	e2 := reopen(t, p)
	registerPush(e2, head)
	n, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Recover returned %d, want 1", n)
	}
	got := listValues(p, head)
	want := []uint64{4, 3, 2, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("list after recovery = %v, want %v", got, want)
	}
	if r := e2.Stats().Recovered.Load(); r != 1 {
		t.Fatalf("Recovered = %d", r)
	}
}

// pushStores replays prior pushes on a scratch pool and returns the number
// of Store events the next push performs. Crash-placement tests derive their
// ordinals from it, so store-batching changes in the engine move the crash
// point with the layout instead of sliding it past the end of the
// transaction. The final store of a push is the commit-status write; the one
// before it is the txfunc's clobbering head update.
func pushStores(t *testing.T, prior uint64) int64 {
	t.Helper()
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	for i := uint64(1); i <= prior; i++ {
		if err := e.Run(0, "push", txn.NewArgs().PutUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.ResetPersistPoints()
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(prior+1)); err != nil {
		t.Fatal(err)
	}
	return p.PersistPoints(nvm.CrashAtStore)
}

// crashDuring arms the crash at the nth store and runs f, requiring the
// crash panic to fire.
func crashDuring(t *testing.T, p *nvm.Pool, f func() error, nthStore int64) {
	t.Helper()
	p.ScheduleCrash(nthStore)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if !errors.Is(asErr(r), nvm.ErrCrash) {
					panic(r)
				}
				crashed = true
			}
		}()
		_ = f()
	}()
	if !crashed {
		t.Fatalf("crash at store %d did not fire", nthStore)
	}
}

func asErr(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("%v", r)
}

// TestCrashSweep crashes at every store ordinal within a push transaction
// and verifies recovery always completes the interrupted push exactly once.
func TestCrashSweep(t *testing.T) {
	for n := int64(1); n <= 40; n++ {
		p, e := newEngine(t, Options{})
		head := p.RootSlot(listHeadSlot)
		registerPush(e, head)
		if err := e.Run(0, "push", txn.NewArgs().PutUint64(100)); err != nil {
			t.Fatal(err)
		}

		p.ScheduleCrash(n)
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !errors.Is(asErr(r), nvm.ErrCrash) {
						panic(r)
					}
					fired = true
				}
			}()
			_ = e.Run(1, "push", txn.NewArgs().PutUint64(200))
		}()
		if !fired {
			// The whole transaction finished in fewer than n stores: from
			// here on there is nothing to sweep.
			p.ScheduleCrash(0)
			break
		}

		e2 := reopen(t, p)
		registerPush(e2, head)
		rec, err := e2.Recover()
		if err != nil {
			t.Fatalf("crash@%d: %v", n, err)
		}
		got := fmt.Sprint(listValues(p, head))
		absent, complete := fmt.Sprint([]uint64{100}), fmt.Sprint([]uint64{200, 100})
		// All-or-nothing: after recovery the push either never happened
		// (begin record not yet durable, rec==0) or fully happened (rec==1,
		// or the commit was already durable before the crash). Anything
		// else is a torn state.
		switch {
		case rec == 1 && got != complete:
			t.Fatalf("crash@%d: re-executed but list = %v", n, got)
		case rec == 0 && got != absent && got != complete:
			t.Fatalf("crash@%d: torn state %v", n, got)
		}
	}
}

func TestRecoverIdleNoop(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(1)); err != nil {
		t.Fatal(err)
	}
	e2 := reopen(t, p)
	registerPush(e2, head)
	n, err := e2.Recover()
	if err != nil || n != 0 {
		t.Fatalf("Recover = %d, %v", n, err)
	}
	if got := listValues(p, head); len(got) != 1 || got[0] != 1 {
		t.Fatalf("list = %v", got)
	}
}

func TestVLogDisabledVariant(t *testing.T) {
	p, e := newEngine(t, Options{DisableVLog: true})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(5)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().Snapshot()
	if s.VLogEntries != 0 {
		t.Fatalf("VLogEntries = %d with v_log disabled", s.VLogEntries)
	}
	if s.LogEntries != 1 {
		t.Fatalf("LogEntries = %d", s.LogEntries)
	}
}

func TestClobberLogDisabledVariant(t *testing.T) {
	p, e := newEngine(t, Options{DisableClobberLog: true})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(5)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().Snapshot()
	if s.LogEntries != 0 {
		t.Fatalf("LogEntries = %d with clobber_log disabled", s.LogEntries)
	}
	if s.VLogEntries != 1 {
		t.Fatalf("VLogEntries = %d", s.VLogEntries)
	}
}

func TestFenceAccountingPerTransaction(t *testing.T) {
	p, e := newEngine(t, Options{})
	cell := p.RootSlot(3)
	e.Register("bump", func(m txn.Mem, args *txn.Args) error {
		v := m.Load64(cell)
		m.Store64(cell, v+1) // exactly one clobber write, no allocs
		return nil
	})
	if err := e.Run(0, "bump", txn.NoArgs); err != nil {
		t.Fatal(err)
	}
	s0 := p.Stats()
	if err := e.Run(0, "bump", txn.NoArgs); err != nil {
		t.Fatal(err)
	}
	d := p.Stats().Sub(s0)
	// begin(1) + clobber append(1) + output flush(1) + commit status(1) = 4
	if d.Fences != 4 {
		t.Fatalf("fences per bump tx = %d, want 4", d.Fences)
	}
}

func TestFreeDeferredToCommit(t *testing.T) {
	p, e := newEngine(t, Options{})
	head := p.RootSlot(listHeadSlot)
	registerPush(e, head)
	e.Register("pop", func(m txn.Mem, args *txn.Args) error {
		node := m.Load64(head)
		if node == 0 {
			return nil
		}
		next := m.Load64(node + 8)
		m.Store64(head, next)
		return m.Free(node)
	})
	if err := e.Run(0, "push", txn.NewArgs().PutUint64(9)); err != nil {
		t.Fatal(err)
	}
	node := p.Load64(head)
	if err := e.Run(0, "pop", txn.NoArgs); err != nil {
		t.Fatal(err)
	}
	if got := p.Load64(head); got != 0 {
		t.Fatalf("head = %#x after pop", got)
	}
	// The freed block must be reusable now.
	addr, err := e.Allocator().Alloc(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if addr != node {
		// Not guaranteed to be the same block in general, but with one free
		// it lands on the same free list: a mismatch suggests the deferred
		// free never happened.
		t.Fatalf("freed block not recycled: alloc=%#x node=%#x", addr, node)
	}
}

func TestCrashDuringPopRecovers(t *testing.T) {
	// Pop frees a node and clobbers head; crash inside, then verify
	// re-execution completes and the list is intact.
	for n := int64(1); n <= 20; n++ {
		p, e := newEngine(t, Options{})
		head := p.RootSlot(listHeadSlot)
		registerPush(e, head)
		e.Register("pop", func(m txn.Mem, args *txn.Args) error {
			node := m.Load64(head)
			if node == 0 {
				return nil
			}
			next := m.Load64(node + 8)
			m.Store64(head, next)
			return m.Free(node)
		})
		for i := uint64(1); i <= 3; i++ {
			if err := e.Run(0, "push", txn.NewArgs().PutUint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		p.ScheduleCrash(n)
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !errors.Is(asErr(r), nvm.ErrCrash) {
						panic(r)
					}
					fired = true
				}
			}()
			_ = e.Run(0, "pop", txn.NoArgs)
		}()
		if !fired {
			break
		}
		e2 := reopen(t, p)
		registerPush(e2, head)
		e2.Register("pop", func(m txn.Mem, args *txn.Args) error {
			node := m.Load64(head)
			if node == 0 {
				return nil
			}
			next := m.Load64(node + 8)
			m.Store64(head, next)
			return m.Free(node)
		})
		rec, err := e2.Recover()
		if err != nil {
			t.Fatalf("crash@%d: %v", n, err)
		}
		got := fmt.Sprint(listValues(p, head))
		absent, complete := fmt.Sprint([]uint64{3, 2, 1}), fmt.Sprint([]uint64{2, 1})
		switch {
		case rec == 1 && got != complete:
			t.Fatalf("crash@%d: re-executed but list = %v", n, got)
		case rec == 0 && got != absent && got != complete:
			t.Fatalf("crash@%d: torn state %v", n, got)
		}
	}
}

func TestAttachRejectsForeignPool(t *testing.T) {
	p := nvm.New(1 << 22)
	a, err := pmem.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(p, a, Options{}); err == nil {
		t.Fatal("Attach succeeded on a pool without an engine")
	}
}

func TestConcurrentSlots(t *testing.T) {
	p, e := newEngine(t, Options{Slots: 8})
	// Each worker pushes onto its own list (disjoint lock sets per the
	// programming model).
	heads := make([]uint64, 4)
	for i := range heads {
		heads[i] = p.RootSlot(10 + i)
	}
	e.Register("pushN", func(m txn.Mem, args *txn.Args) error {
		head := args.Uint64(0)
		val := args.Uint64(1)
		node, err := m.Alloc(16)
		if err != nil {
			return err
		}
		m.Store64(node, val)
		m.Store64(node+8, m.Load64(head))
		m.Store64(head, node)
		return nil
	})
	done := make(chan error, len(heads))
	for w := range heads {
		go func(w int) {
			var err error
			for i := uint64(0); i < 100 && err == nil; i++ {
				err = e.Run(w, "pushN", txn.NewArgs().PutUint64(heads[w]).PutUint64(i))
			}
			done <- err
		}(w)
	}
	for range heads {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for w := range heads {
		if got := len(listValues(p, heads[w])); got != 100 {
			t.Fatalf("worker %d list has %d nodes", w, got)
		}
	}
}
