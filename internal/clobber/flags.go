package clobber

// flagTable is a small open-addressing hash table from cache-line index to
// the packed access-class flags of the line's eight 8-byte words. It replaces
// a Go map on the transaction's hot path: the real Clobber-NVM identifies
// clobber writes at compile time and pays nothing per load at run time, so
// the dynamic detector standing in for the compiler must be as close to free
// as possible or it would distort the engine comparison.
//
// Packing a whole line into one uint32 (bits 0–7 input, 8–15 stored, 16–23
// logged, one bit per word) turns the former probe-per-word lookups into a
// single probe per line, and folds the old separate dirty-line set into the
// same entry: a line joins the dirty list when its stored byte first becomes
// nonzero.
//
// Linear probing, power-of-two capacity, grow at 75% load. Keys are line
// indexes (addr >> 6) stored +1. Tables are reused
// across transactions of the same slot via reset: a slot is live only when
// its generation stamp matches the table's, so reset is O(1) rather than a
// clear of the whole capacity (one large transaction — a rehash, a bulk
// populate — would otherwise tax every later transaction of the slot with
// a multi-KB memclr).
type flagTable struct {
	keys  []uint64
	vals  []uint32
	gen   []uint32
	cur   uint32
	n     int
	mask  uint64
	dirty []uint64 // line indexes touched by stores (deduplicated, unordered)
}

// Packed flag-field shifts: value layout is logged<<16 | stored<<8 | input,
// each field one bit per word of the line.
const (
	flagsInputShift  = 0
	flagsStoredShift = 8
	flagsLoggedShift = 16
)

const flagTableInitial = 256

func newFlagTable() *flagTable {
	return &flagTable{
		keys: make([]uint64, flagTableInitial),
		vals: make([]uint32, flagTableInitial),
		gen:  make([]uint32, flagTableInitial),
		cur:  1,
		mask: flagTableInitial - 1,
	}
}

// reset prepares the table for a new transaction, keeping the allocation.
// Bumping the generation invalidates every slot at once; the rare wraparound
// falls back to a full clear so stale stamps can never alias.
func (t *flagTable) reset() {
	t.cur++
	if t.cur == 0 {
		clear(t.keys)
		clear(t.gen)
		t.cur = 1
	}
	t.n = 0
	t.dirty = t.dirty[:0]
}

func mixHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// slot returns the probe index holding line (creating the entry if absent).
func (t *flagTable) slot(line uint64) uint64 {
	k := line + 1
	i := mixHash(k) & t.mask
	for {
		if t.gen[i] != t.cur {
			t.keys[i] = k
			t.vals[i] = 0
			t.gen[i] = t.cur
			t.n++
			if t.n*4 > len(t.keys)*3 {
				t.grow()
				return t.slot(line)
			}
			return i
		}
		if t.keys[i] == k {
			return i
		}
		i = (i + 1) & t.mask
	}
}

// markInput marks the words of wmask as transaction inputs. In refined mode
// words already stored by this transaction are skipped (they read a
// transaction-produced value, not an input).
func (t *flagTable) markInput(line uint64, wmask uint32, conservative bool) {
	i := t.slot(line)
	if conservative {
		t.vals[i] |= wmask
		return
	}
	t.vals[i] |= wmask &^ (t.vals[i] >> flagsStoredShift)
}

// markStored marks the words of wmask as stored and returns the entry's
// previous packed value so the caller can detect clobber writes. The line is
// appended to the dirty list on its first stored word.
func (t *flagTable) markStored(line uint64, wmask uint32) uint32 {
	i := t.slot(line)
	old := t.vals[i]
	t.vals[i] = old | wmask<<flagsStoredShift
	if old&(0xff<<flagsStoredShift) == 0 {
		t.dirty = append(t.dirty, line)
	}
	return old
}

// markLogged marks the words of wmask as clobber-logged.
func (t *flagTable) markLogged(line uint64, wmask uint32) {
	i := t.slot(line)
	t.vals[i] |= wmask << flagsLoggedShift
}

func (t *flagTable) grow() {
	oldKeys, oldVals, oldGen := t.keys, t.vals, t.gen
	t.keys = make([]uint64, len(oldKeys)*2)
	t.vals = make([]uint32, len(oldVals)*2)
	t.gen = make([]uint32, len(oldKeys)*2)
	t.mask = uint64(len(t.keys) - 1)
	t.n = 0
	for i, k := range oldKeys {
		if oldGen[i] != t.cur {
			continue
		}
		j := mixHash(k) & t.mask
		for t.gen[j] == t.cur {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
		t.gen[j] = t.cur
		t.n++
	}
}
