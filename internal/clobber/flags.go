package clobber

// flagTable is a small open-addressing hash table from tracking unit
// (word index) to access-class flags. It replaces a Go map on the
// transaction's hot path: the real Clobber-NVM identifies clobber writes at
// compile time and pays nothing per load at run time, so the dynamic
// detector standing in for the compiler must be as close to free as
// possible or it would distort the engine comparison.
//
// Linear probing, power-of-two capacity, grow at 75% load. Keys are word
// indexes (addr >> 3), stored +1 so zero means empty.
type flagTable struct {
	keys  []uint64
	vals  []uint8
	n     int
	mask  uint64
	dirty []uint64 // line indexes touched by stores (deduplicated, unordered)
	seen  flagTableLines
}

// flagTableLines tracks dirty cache lines with the same open addressing.
type flagTableLines struct {
	keys []uint64
	n    int
	mask uint64
}

const flagTableInitial = 256

func newFlagTable() *flagTable {
	t := &flagTable{
		keys: make([]uint64, flagTableInitial),
		vals: make([]uint8, flagTableInitial),
		mask: flagTableInitial - 1,
	}
	t.seen.keys = make([]uint64, flagTableInitial)
	t.seen.mask = flagTableInitial - 1
	return t
}

func mixHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// get returns the flags for unit u (0 if untracked).
func (t *flagTable) get(u uint64) uint8 {
	k := u + 1
	i := mixHash(k) & t.mask
	for {
		cur := t.keys[i]
		if cur == k {
			return t.vals[i]
		}
		if cur == 0 {
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// or sets flag bits for unit u and returns the previous flags.
func (t *flagTable) or(u uint64, bits uint8) uint8 {
	k := u + 1
	i := mixHash(k) & t.mask
	for {
		cur := t.keys[i]
		if cur == k {
			old := t.vals[i]
			t.vals[i] = old | bits
			return old
		}
		if cur == 0 {
			t.keys[i] = k
			t.vals[i] = bits
			t.n++
			if t.n*4 > len(t.keys)*3 {
				t.grow()
			}
			return 0
		}
		i = (i + 1) & t.mask
	}
}

func (t *flagTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, len(oldKeys)*2)
	t.vals = make([]uint8, len(oldVals)*2)
	t.mask = uint64(len(t.keys) - 1)
	t.n = 0
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := mixHash(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
		t.n++
	}
}

// markLine records a dirty cache line (deduplicated).
func (t *flagTable) markLine(line uint64) {
	s := &t.seen
	k := line + 1
	i := mixHash(k) & s.mask
	for {
		cur := s.keys[i]
		if cur == k {
			return
		}
		if cur == 0 {
			s.keys[i] = k
			s.n++
			t.dirty = append(t.dirty, line)
			if s.n*4 > len(s.keys)*3 {
				s.grow()
			}
			return
		}
		i = (i + 1) & s.mask
	}
}

func (s *flagTableLines) grow() {
	old := s.keys
	s.keys = make([]uint64, len(old)*2)
	s.mask = uint64(len(s.keys) - 1)
	s.n = 0
	for _, k := range old {
		if k == 0 {
			continue
		}
		j := mixHash(k) & s.mask
		for s.keys[j] != 0 {
			j = (j + 1) & s.mask
		}
		s.keys[j] = k
		s.n++
	}
}
