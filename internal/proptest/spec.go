// Package proptest is the property-based differential torture harness: a
// seeded, reproducible generator of randomized operation sequences over
// every persistent structure under every failure-atomicity engine, checked
// against a volatile in-DRAM reference model through crash-recover cycles at
// sampled persist points. On divergence a delta-debugging shrinker minimizes
// the failing (sequence, crash point, engine, structure) tuple to a smallest
// reproducer and emits a one-line replay command.
//
// Everything a failure needs to reproduce is a single Spec, serializable as
// one line of flag-style fields:
//
//	engine=pmdk structure=rbtree seed=42 ops=30 crash-at=any evict=random point=17 threads=1
//
// which replays with:
//
//	go run ./cmd/torture -replay "<that line>"
package proptest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"clobbernvm/internal/nvm"
)

// Spec identifies one torture scenario completely: the generated operation
// sequence (Seed, Ops, optionally filtered by Keep), the cell it runs in
// (Engine, Structure), and the crash being injected (Kind, Policy, Point,
// Threads). Two runs of the same Spec behave identically.
type Spec struct {
	Engine    string
	Structure string
	// Seed drives the op-sequence generator and the eviction adversary.
	Seed int64
	// Ops is the length of the generated sequence.
	Ops int
	// Keep optionally selects a subset of the generated sequence by index
	// (sorted, unique); nil means every op. The shrinker minimizes this.
	Keep []int
	// Kind and Policy select the persist-point class and eviction adversary.
	Kind   nvm.CrashKind
	Policy nvm.EvictPolicy
	// Point is the 1-based persist-point ordinal (of Kind, counted from the
	// first executed op) the crash fires at; 0 runs the sequence without a
	// crash and audits only the final state.
	Point int64
	// Threads > 1 selects concurrent mode: each thread runs its own stream
	// over a disjoint key space and the crash halts them all mid-flight.
	Threads int
	// GroupCommit enables the pool's epoch-based group-commit coordinator,
	// so crashes can land inside a partially-drained commit epoch shared by
	// several threads. Off by default: single-threaded persist-point
	// ordinals then stay identical to historical spec lines.
	GroupCommit bool
}

// String encodes the spec as one parseable line.
func (s Spec) String() string {
	threads := s.Threads
	if threads < 1 {
		threads = 1
	}
	line := fmt.Sprintf("engine=%s structure=%s seed=%d ops=%d crash-at=%s evict=%s point=%d threads=%d",
		s.Engine, s.Structure, s.Seed, s.Ops, s.Kind, s.Policy, s.Point, threads)
	if s.GroupCommit {
		line += " gc=1"
	}
	if s.Keep != nil {
		idx := make([]string, len(s.Keep))
		for i, k := range s.Keep {
			idx[i] = strconv.Itoa(k)
		}
		line += " keep=" + strings.Join(idx, ",")
	}
	return line
}

// Parse decodes a Spec from the String encoding.
func Parse(line string) (Spec, error) {
	s := Spec{Threads: 1}
	for _, field := range strings.Fields(line) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("proptest: malformed field %q", field)
		}
		var err error
		switch k {
		case "engine":
			s.Engine = v
		case "structure":
			s.Structure = v
		case "seed":
			s.Seed, err = strconv.ParseInt(v, 10, 64)
		case "ops":
			s.Ops, err = strconv.Atoi(v)
		case "crash-at":
			s.Kind, err = nvm.ParseCrashKind(v)
		case "evict":
			s.Policy, err = nvm.ParseEvictPolicy(v)
		case "point":
			s.Point, err = strconv.ParseInt(v, 10, 64)
		case "threads":
			s.Threads, err = strconv.Atoi(v)
		case "gc":
			var on int
			on, err = strconv.Atoi(v)
			s.GroupCommit = on != 0
		case "keep":
			s.Keep = []int{}
			for _, part := range strings.Split(v, ",") {
				if part == "" {
					continue
				}
				i, perr := strconv.Atoi(part)
				if perr != nil {
					return Spec{}, fmt.Errorf("proptest: keep index %q: %w", part, perr)
				}
				s.Keep = append(s.Keep, i)
			}
		default:
			return Spec{}, fmt.Errorf("proptest: unknown field %q", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("proptest: field %q: %w", field, err)
		}
	}
	if s.Engine == "" || s.Structure == "" || s.Ops <= 0 {
		return Spec{}, fmt.Errorf("proptest: spec %q missing engine, structure or ops", line)
	}
	if s.Keep != nil {
		sort.Ints(s.Keep)
		for i, k := range s.Keep {
			if k < 0 || k >= s.Ops || (i > 0 && s.Keep[i-1] == k) {
				return Spec{}, fmt.Errorf("proptest: keep index %d out of range or duplicated", k)
			}
		}
	}
	return s, nil
}

// Failure is one reproducible divergence: the exact spec (with the concrete
// crash point filled in), the index of the executed op the crash interrupted
// (-1 when the divergence happened without a crash), and what the audit saw.
type Failure struct {
	Spec   Spec
	Op     int
	Detail string
}

// Error renders the failure with its replay command — the contract that
// every torture failure prints the exact line needed to reproduce it.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s\n  spec: %s\n  reproduce: %s", f.Detail, f.Spec, f.ReplayCommand())
}

// ReplayCommand returns the shell command that replays this exact failure.
func (f *Failure) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/torture -replay %q", f.Spec.String())
}
