package proptest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"clobbernvm/internal/crashsweep"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
)

const (
	rootSlot = 16
	// poolSize keeps per-run setup cheap: the hashmap's bucket table plus
	// the small sweep-sized engine logs fit comfortably in 8 MiB.
	poolSize = 1 << 23
)

// Engines lists the failure-atomicity engines the torture covers. The ido
// and justdo meters are excluded: they promise nothing about recovery, so a
// differential oracle has nothing to check.
func Engines() []string {
	names := []string{}
	for _, s := range crashsweep.Specs() {
		if s.Style == crashsweep.StyleAtomic {
			names = append(names, s.Name)
		}
	}
	return names
}

// Structures lists the persistent structures the torture covers.
func Structures() []string { return crashsweep.StructureKinds() }

// engineSpec resolves an atomic engine by name, sized for the spec's thread
// count (each concurrent worker needs its own transaction slot).
func engineSpec(spec Spec) (crashsweep.EngineSpec, error) {
	slots := 2
	if spec.Threads > slots {
		slots = spec.Threads
	}
	for _, es := range crashsweep.SpecsSized(slots, 1<<20) {
		if es.Name == spec.Engine {
			if es.Style != crashsweep.StyleAtomic {
				return crashsweep.EngineSpec{}, fmt.Errorf("proptest: engine %q is a meter, not failure-atomic", spec.Engine)
			}
			return es, nil
		}
	}
	return crashsweep.EngineSpec{}, fmt.Errorf("proptest: unknown engine %q (want %v)", spec.Engine, Engines())
}

// Run resolves the spec's engine by name and executes it: the exact crash
// point when spec.Point > 0, a crash-free differential pass otherwise.
func Run(spec Spec) (*Failure, error) {
	es, err := engineSpec(spec)
	if err != nil {
		return nil, err
	}
	return RunSpec(es, spec)
}

// TortureNamed resolves the spec's engine by name and runs Torture.
func TortureNamed(spec Spec, samples int) (*Failure, error) {
	es, err := engineSpec(spec)
	if err != nil {
		return nil, err
	}
	return Torture(es, spec, samples)
}

// ShrinkNamed resolves the failure's engine by name and runs Shrink.
func ShrinkNamed(f Failure) (Failure, int, error) {
	es, err := engineSpec(f.Spec)
	if err != nil {
		return f, 0, err
	}
	return Shrink(es, f)
}

// RunSpec executes one spec under an explicit engine spec. Tests pass
// deliberately broken engines here to prove the oracle and shrinker work.
// A nil Failure means the run was consistent; error means the harness
// itself could not run the cell.
func RunSpec(es crashsweep.EngineSpec, spec Spec) (*Failure, error) {
	if spec.Threads > 1 {
		return runConcurrent(es, spec)
	}
	return runSequential(es, spec)
}

// Measure counts the persist points of spec.Kind the full kept sequence
// emits, crash-free. Point sampling and the shrinker's window sweeps draw
// from [1, Measure()].
func Measure(es crashsweep.EngineSpec, spec Spec) (int64, error) {
	spec.Point = 0
	pool, store, _, err := setup(es, spec)
	if err != nil {
		return 0, err
	}
	pool.ResetPersistPoints()
	for _, o := range Materialize(spec) {
		if err := execOp(store, 0, o, nil); err != nil {
			return 0, err
		}
	}
	return pool.PersistPoints(spec.Kind), nil
}

// Torture samples `samples` random crash points over the spec's sequence and
// runs each, returning the first failure. The sampling RNG derives from the
// spec seed, so a torture round is as reproducible as a single run.
func Torture(es crashsweep.EngineSpec, spec Spec, samples int) (*Failure, error) {
	if spec.Threads > 1 {
		return tortureConcurrent(es, spec, samples)
	}
	total, err := Measure(es, spec)
	if err != nil {
		return nil, err
	}
	if f, err := RunSpec(es, spec); f != nil || err != nil {
		return f, err // crash-free differential pass first
	}
	if total == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5DEECE66D))
	for i := 0; i < samples; i++ {
		s := spec
		s.Point = 1 + rng.Int63n(total)
		f, err := RunSpec(es, s)
		if f != nil || err != nil {
			return f, err
		}
	}
	return nil, nil
}

// setup builds the pool/allocator/engine/structure stack for one run.
func setup(es crashsweep.EngineSpec, spec Spec) (*nvm.Pool, pds.Store, pds.Engine, error) {
	size := uint64(poolSize)
	if spec.Threads > 1 {
		size = 1 << 24 // per-slot logs for every worker
	}
	pool := nvm.New(size, nvm.WithSeed(spec.Seed), nvm.WithEviction(spec.Policy))
	if spec.GroupCommit {
		w := nvm.DefaultGroupCommitWaiters
		if spec.Threads > w {
			w = spec.Threads
		}
		pool.GroupCommit(w, nvm.DefaultGroupCommitDelayNS)
	}
	alloc, err := pmem.Create(pool)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("proptest: create allocator: %w", err)
	}
	eng, err := es.Create(pool, alloc)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("proptest: create %s: %w", es.Name, err)
	}
	store, err := crashsweep.OpenStructure(spec.Structure, eng, rootSlot)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("proptest: open %s: %w", spec.Structure, err)
	}
	return pool, store, eng, nil
}

// reattach reopens the full stack after a crash and runs recovery,
// returning the recovered store or an audit detail for recovery failures.
func reattach(es crashsweep.EngineSpec, spec Spec, pool *nvm.Pool) (pds.Store, string) {
	a, err := pmem.Attach(pool)
	if err != nil {
		return nil, fmt.Sprintf("allocator attach failed: %v", err)
	}
	e2, err := es.Attach(pool, a)
	if err != nil {
		return nil, fmt.Sprintf("engine attach failed: %v", err)
	}
	store2, err := crashsweep.OpenStructure(spec.Structure, e2, rootSlot)
	if err != nil {
		return nil, fmt.Sprintf("structure open failed: %v", err)
	}
	rep, err := crashsweep.Recover(e2)
	if err != nil {
		return nil, fmt.Sprintf("recovery failed: %v", err)
	}
	if rep.Quarantined > 0 {
		return nil, fmt.Sprintf("recovery quarantined %d slot(s) after a pure power failure: %v",
			rep.Quarantined, errors.Join(rep.Errors...))
	}
	return store2, ""
}

// execOp runs one op on the store from the given slot. For lookups, model
// (when non-nil) is the expected pre-op state; a divergent read is returned
// as an error tagged errDiverged.
func execOp(s pds.Store, slot int, o Op, model map[string]string) error {
	switch o.Kind {
	case OpInsert:
		return s.Insert(slot, []byte(o.Key), []byte(o.Val))
	case OpDelete:
		_, err := s.Delete(slot, []byte(o.Key))
		return err
	default:
		got, found, err := s.Get(slot, []byte(o.Key))
		if err != nil {
			return err
		}
		if model == nil {
			return nil
		}
		want, ok := model[o.Key]
		if found != ok || (found && !bytes.Equal(got, []byte(want))) {
			return fmt.Errorf("%w: lookup %q: got (%q,%v), model (%q,%v)",
				errDiverged, o.Key, got, found, want, ok)
		}
		return nil
	}
}

// errDiverged tags a differential mismatch observed without a crash.
var errDiverged = errors.New("differential divergence")

// runSequential is the single-threaded oracle: execute the kept sequence
// with a crash armed at spec.Point (if any), checking every lookup against
// the reference model; on crash, recover and audit the surviving state
// against the two admissible models for the interrupted op, plus structural
// invariants.
func runSequential(es crashsweep.EngineSpec, spec Spec) (*Failure, error) {
	pool, store, _, err := setup(es, spec)
	if err != nil {
		return nil, err
	}
	ops := Materialize(spec)
	models, universe := buildModels(ops)

	if spec.Point > 0 {
		pool.ScheduleCrashAt(spec.Kind, spec.Point)
	}
	fired, opIdx := false, -1
	for j, o := range ops {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					e, ok := r.(error)
					if !ok || !errors.Is(e, nvm.ErrCrash) {
						panic(r)
					}
					fired, opIdx = true, j
				}
			}()
			return execOp(store, 0, o, models[j])
		}()
		if fired {
			break
		}
		if errors.Is(err, errDiverged) {
			return &Failure{Spec: spec, Op: j, Detail: err.Error()}, nil
		}
		if err != nil {
			return nil, fmt.Errorf("proptest: op %d %v: %w", j, o, err)
		}
	}
	pool.ScheduleCrashAt(spec.Kind, 0)

	if !fired {
		// Crash-free (Point == 0, or the point lay beyond the sequence):
		// the final state must match the full model exactly.
		obs, err := crashsweep.Observe(store, universe)
		if err != nil {
			return &Failure{Spec: spec, Op: -1, Detail: err.Error()}, nil
		}
		final := models[len(ops)]
		if detail := crashsweep.AuditRecovered(store, obs, final, final); detail != "" {
			return &Failure{Spec: spec, Op: -1, Detail: detail}, nil
		}
		return nil, nil
	}

	pool.Crash()
	store2, detail := reattach(es, spec, pool)
	if detail != "" {
		return &Failure{Spec: spec, Op: opIdx, Detail: detail}, nil
	}
	obs, err := crashsweep.Observe(store2, universe)
	if err != nil {
		return &Failure{Spec: spec, Op: opIdx, Detail: err.Error()}, nil
	}
	if detail := crashsweep.AuditRecovered(store2, obs, models[opIdx], models[opIdx+1]); detail != "" {
		return &Failure{Spec: spec, Op: opIdx, Detail: detail}, nil
	}
	return nil, nil
}
