package proptest

import (
	"fmt"
	"math/rand"
)

// OpKind classifies one generated operation.
type OpKind int

const (
	OpInsert OpKind = iota
	OpDelete
	OpLookup
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "lookup"
	}
}

// Op is one generated operation. Inserts double as updates whenever the key
// distribution revisits a key.
type Op struct {
	Kind OpKind
	Key  string
	Val  string
}

func (o Op) String() string {
	if o.Kind == OpInsert {
		return fmt.Sprintf("insert(%s=%s)", o.Key, o.Val)
	}
	return fmt.Sprintf("%s(%s)", o.Kind, o.Key)
}

// apply mirrors the op into a volatile reference model.
func (o Op) apply(m map[string]string) {
	switch o.Kind {
	case OpInsert:
		m[o.Key] = o.Val
	case OpDelete:
		delete(m, o.Key)
	}
}

// keyDist is one key distribution the generator can pick. Skewed and
// adversarial shapes stress different structure paths: uniform churn,
// zipfian hot keys (repeated in-place clobbers), sequential runs (tree
// splits and rotations at the right edge), and shared-prefix keys (deep
// comparisons, hash clustering).
type keyDist func(rng *rand.Rand, i int) string

func distributions(rng *rand.Rand) keyDist {
	switch rng.Intn(4) {
	case 0: // uniform over a small space: heavy key reuse
		return func(rng *rand.Rand, _ int) string {
			return fmt.Sprintf("u-%03d", rng.Intn(48))
		}
	case 1: // zipfian: a few very hot keys, a long cold tail
		z := rand.NewZipf(rng, 1.3, 1, 47)
		return func(_ *rand.Rand, _ int) string {
			return fmt.Sprintf("z-%03d", z.Uint64())
		}
	case 2: // sequential: sorted inserts, the tree-split adversary
		return func(_ *rand.Rand, i int) string {
			return fmt.Sprintf("s-%05d", i)
		}
	default: // shared prefix: long common prefixes, tiny distinguishing tail
		return func(rng *rand.Rand, _ int) string {
			return fmt.Sprintf("p-%s-%02d", "xxxxxxxxxxxxxxxxxxxxxxxx", rng.Intn(24))
		}
	}
}

// Generate produces the full deterministic op sequence for spec (ignoring
// Keep): same seed, same sequence, forever.
func Generate(spec Spec) []Op {
	rng := rand.New(rand.NewSource(spec.Seed))
	dist := distributions(rng)
	ops := make([]Op, 0, spec.Ops)
	for i := 0; i < spec.Ops; i++ {
		key := dist(rng, i)
		switch r := rng.Intn(100); {
		case r < 55:
			ops = append(ops, Op{OpInsert, key, fmt.Sprintf("v%d-%d", spec.Seed, i)})
		case r < 75:
			ops = append(ops, Op{OpDelete, key, ""})
		default:
			ops = append(ops, Op{OpLookup, key, ""})
		}
	}
	return ops
}

// Materialize generates the sequence and applies the Keep filter.
func Materialize(spec Spec) []Op {
	ops := Generate(spec)
	if spec.Keep == nil {
		return ops
	}
	kept := make([]Op, 0, len(spec.Keep))
	for _, i := range spec.Keep {
		if i >= 0 && i < len(ops) {
			kept = append(kept, ops[i])
		}
	}
	return kept
}

// buildModels returns models[j] = expected state after the first j ops, plus
// the universe of every key the sequence touches.
func buildModels(ops []Op) (models []map[string]string, universe map[string]struct{}) {
	models = make([]map[string]string, len(ops)+1)
	models[0] = map[string]string{}
	universe = map[string]struct{}{}
	for j, o := range ops {
		next := make(map[string]string, len(models[j])+1)
		for k, v := range models[j] {
			next[k] = v
		}
		o.apply(next)
		models[j+1] = next
		universe[o.Key] = struct{}{}
	}
	return models, universe
}
