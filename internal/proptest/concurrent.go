package proptest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"clobbernvm/internal/crashsweep"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
)

// Concurrent mode: each of spec.Threads workers runs its own generated op
// stream over a disjoint key space (keys prefixed "w<id>-"), on its own
// transaction slot. The first half of every stream runs as a warm-up on the
// pool's fast (deferred-media) path; arming the crash flips the pool back to
// precise bookkeeping, and the live halves then race until the scheduled
// point fires — the sticky crash latch halts every other worker at its next
// persistence event, exactly like a real power failure.
//
// The oracle is exact because key spaces are disjoint: every linearization
// of the per-worker histories projects, per worker, to the committed prefix
// with at most one in-flight op, all-or-nothing. A worker's recovered
// projection must therefore equal its model after the committed ops, or —
// only if an op was actually in flight — after one more (engines that
// recover by re-execution, like clobber, may complete it).
//
// Concurrent replays re-run the same scenario (same streams, same point
// ordinal) but thread interleaving may move which op the crash lands in;
// the audit validates whatever interleaving occurred.

// tortureConcurrent samples crash points for a concurrent spec. The exact
// live-phase point count depends on thread interleaving, so the sampling
// range is a per-op event-density estimate; points beyond the actual run
// simply never fire and degrade to a crash-free final-state check.
func tortureConcurrent(es crashsweep.EngineSpec, spec Spec, samples int) (*Failure, error) {
	base := spec
	base.Point = 0
	if f, err := RunSpec(es, base); f != nil || err != nil {
		return f, err
	}
	liveOps := (spec.Ops - spec.Ops/2) * spec.Threads
	span := int64(eventsPerOp(spec.Kind)) * int64(liveOps)
	if span < 1 {
		span = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5DEECE66D))
	for i := 0; i < samples; i++ {
		s := spec
		s.Point = 1 + rng.Int63n(span)
		if f, err := RunSpec(es, s); f != nil || err != nil {
			return f, err
		}
	}
	return nil, nil
}

// eventsPerOp estimates how many persistence events of each class one
// structure operation emits, bounding the random crash ordinal so sampled
// points usually land inside the live phase.
func eventsPerOp(kind nvm.CrashKind) int {
	switch kind {
	case nvm.CrashAtStore:
		return 150
	case nvm.CrashAtFlush:
		return 40
	case nvm.CrashAtFence:
		return 12
	default:
		return 200
	}
}

// worker is one concurrent stream's execution record.
type worker struct {
	ops       []Op
	models    []map[string]string
	universe  map[string]struct{}
	committed int
	inFlight  bool
	diverged  error
	runErr    error
}

// workerOps generates worker w's stream: the shared spec seed is offset per
// worker and every key is prefixed into the worker's private space.
func workerOps(spec Spec, w int) []Op {
	wspec := spec
	wspec.Seed = spec.Seed + int64(w)*1000003
	wspec.Keep = nil
	ops := Generate(wspec)
	for i := range ops {
		ops[i].Key = fmt.Sprintf("w%d-%s", w, ops[i].Key)
	}
	return ops
}

func runConcurrent(es crashsweep.EngineSpec, spec Spec) (*Failure, error) {
	if spec.Threads < 2 {
		return nil, fmt.Errorf("proptest: concurrent mode needs threads >= 2")
	}
	pool, store, _, err := setup(es, spec)
	if err != nil {
		return nil, err
	}

	workers := make([]*worker, spec.Threads)
	for w := range workers {
		ops := workerOps(spec, w)
		models, universe := buildModels(ops)
		workers[w] = &worker{ops: ops, models: models, universe: universe}
	}
	warm := spec.Ops / 2

	// runPhase executes each worker's [lo, hi) ops concurrently, stopping a
	// worker at the first crash panic, divergence, or hard error.
	runPhase := func(lo, hi int) {
		var wg sync.WaitGroup
		for w, st := range workers {
			wg.Add(1)
			go func(slot int, st *worker) {
				defer wg.Done()
				for j := lo; j < hi && j < len(st.ops); j++ {
					if pool.Crashed() {
						return // power is out; nothing executes
					}
					crashed := false
					err := func() (err error) {
						defer func() {
							if r := recover(); r != nil {
								e, ok := r.(error)
								if !ok || !errors.Is(e, nvm.ErrCrash) {
									panic(r)
								}
								crashed = true
							}
						}()
						return execOp(store, slot, st.ops[j], st.models[j])
					}()
					if crashed {
						st.inFlight = true
						return
					}
					if errors.Is(err, errDiverged) {
						st.diverged = fmt.Errorf("worker %d op %d: %w", slot, j, err)
						return
					}
					if err != nil {
						st.runErr = fmt.Errorf("worker %d op %d %v: %w", slot, j, st.ops[j], err)
						return
					}
					st.committed = j + 1
				}
			}(w, st)
		}
		wg.Wait()
	}

	// Warm-up on the fast path: committed bulk state, no crash armed.
	pool.SetFastPath(true)
	runPhase(0, warm)
	for _, st := range workers {
		if st.runErr != nil {
			return nil, st.runErr
		}
		if st.diverged != nil {
			return &Failure{Spec: spec, Op: st.committed, Detail: st.diverged.Error()}, nil
		}
	}

	// Live phase: arming the crash forces precise mode (syncing the
	// deferred durable view) and resets the point counters.
	if spec.Point > 0 {
		pool.ScheduleCrashAt(spec.Kind, spec.Point)
	} else {
		pool.ResetPersistPoints()
	}
	runPhase(warm, spec.Ops)
	fired := pool.Crashed()
	pool.ScheduleCrashAt(spec.Kind, 0)
	for _, st := range workers {
		if st.runErr != nil {
			return nil, st.runErr
		}
		if st.diverged != nil {
			return &Failure{Spec: spec, Op: st.committed, Detail: st.diverged.Error()}, nil
		}
	}

	audit := func(s pds.Store, recovered bool) *Failure {
		totalWant := 0
		for w, st := range workers {
			obs, err := crashsweep.Observe(s, st.universe)
			if err != nil {
				return &Failure{Spec: spec, Op: st.committed, Detail: err.Error()}
			}
			pre := st.models[st.committed]
			switch {
			case crashsweep.ModelEqual(obs, pre):
				totalWant += len(pre)
			case recovered && st.inFlight && crashsweep.ModelEqual(obs, st.models[st.committed+1]):
				totalWant += len(st.models[st.committed+1])
			default:
				return &Failure{Spec: spec, Op: st.committed, Detail: fmt.Sprintf(
					"worker %d: recovered projection matches neither its %d-op committed prefix nor the in-flight op completing (in-flight=%v): got %v, want %v",
					w, st.committed, st.inFlight, obs, pre)}
			}
		}
		if n, err := s.Len(0); err != nil || n != totalWant {
			return &Failure{Spec: spec, Op: -1,
				Detail: fmt.Sprintf("Len = %d, %v; per-worker projections imply %d", n, err, totalWant)}
		}
		if err := pds.CheckInvariants(s, 0); err != nil {
			return &Failure{Spec: spec, Op: -1,
				Detail: fmt.Sprintf("structural invariant violated: %v", err)}
		}
		return nil
	}

	if !fired {
		// No crash (Point == 0 or beyond the run): exact final-state check.
		return audit(store, false), nil
	}

	pool.Crash()
	store2, detail := reattach(es, spec, pool)
	if detail != "" {
		return &Failure{Spec: spec, Op: -1, Detail: detail}, nil
	}
	return audit(store2, true), nil
}
