package proptest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"clobbernvm/internal/crashsweep"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/undolog"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Engine: "clobber", Structure: "rbtree", Seed: 42, Ops: 30,
			Kind: nvm.CrashAtAny, Policy: nvm.EvictRandom, Point: 17, Threads: 1},
		{Engine: "pmdk", Structure: "hashmap", Seed: -7, Ops: 12,
			Kind: nvm.CrashAtFence, Policy: nvm.EvictTorn, Point: 0, Threads: 4},
		{Engine: "atlas", Structure: "list", Seed: 3, Ops: 8, Keep: []int{0, 2, 7},
			Kind: nvm.CrashAtStore, Policy: nvm.EvictNone, Point: 5, Threads: 1},
		{Engine: "clobber", Structure: "hashmap", Seed: 11, Ops: 24,
			Kind: nvm.CrashAtAny, Policy: nvm.EvictRandom, Point: 40, Threads: 4,
			GroupCommit: true},
	}
	for _, want := range specs {
		line := want.String()
		got, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if want.Threads < 1 {
			want.Threads = 1
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %q:\n got %+v\nwant %+v", line, got, want)
		}
	}
	for _, bad := range []string{"", "engine=clobber", "engine=x structure=y ops=zero", "nonsense"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Engine: "clobber", Structure: "list", Seed: 99, Ops: 50}
	a, b := Generate(spec), Generate(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different sequences")
	}
	spec2 := spec
	spec2.Seed = 100
	if reflect.DeepEqual(a, Generate(spec2)) {
		t.Fatal("different seeds generated identical sequences")
	}
	spec.Keep = []int{1, 3, 4}
	kept := Materialize(spec)
	if len(kept) != 3 || kept[0] != a[1] || kept[1] != a[3] || kept[2] != a[4] {
		t.Fatalf("Materialize did not honour Keep: %v", kept)
	}
}

// TestTortureAllCells is the headline budget: >= 200 seeded sequences across
// every atomic engine x every structure, each with sampled crash points, all
// consistent.
func TestTortureAllCells(t *testing.T) {
	engines := Engines()
	structures := Structures()
	const seedsPerCell = 9 // 4 engines x 6 structures x 9 = 216 sequences
	sequences := 0
	for _, engine := range engines {
		for _, structure := range structures {
			engine, structure := engine, structure
			t.Run(engine+"/"+structure, func(t *testing.T) {
				t.Parallel()
				for seed := int64(0); seed < seedsPerCell; seed++ {
					spec := Spec{
						Engine: engine, Structure: structure,
						Seed: seed, Ops: 10,
						Kind:   nvm.CrashKind(seed % 4), // rotate store/flush/fence/any
						Policy: nvm.EvictPolicy(seed % 4),
					}
					es, err := engineSpec(spec)
					if err != nil {
						t.Fatal(err)
					}
					f, err := Torture(es, spec, 2)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if f != nil {
						t.Fatalf("seed %d: %v", seed, f.Error())
					}
				}
			})
			sequences += seedsPerCell
		}
	}
	if sequences < 200 {
		t.Fatalf("only %d sequences scheduled, want >= 200", sequences)
	}
	t.Logf("%d torture sequences across %d engines x %d structures",
		sequences, len(engines), len(structures))
}

// skipRecovery wraps a real engine but skips its undo pass at recovery —
// the injected recovery bug the torture must catch. Embedding the interface
// hides the inner engine's RecoverReport, so the harness sees a plain
// Recover that silently does nothing.
type skipRecovery struct {
	pds.Engine
}

func (s skipRecovery) Recover() (int, error) { return 0, nil }

func brokenEngine() crashsweep.EngineSpec {
	return crashsweep.EngineSpec{
		Name: "pmdk-skip", Style: crashsweep.StyleAtomic,
		Create: func(p *nvm.Pool, a *pmem.Allocator) (pds.Engine, error) {
			return undolog.Create(p, a, undolog.Options{
				Slots: 2, DataLogCap: 1 << 20, AllocLogCap: 128, FreeLogCap: 128,
			})
		},
		Attach: func(p *nvm.Pool, a *pmem.Allocator) (pds.Engine, error) {
			inner, err := undolog.Attach(p, a, undolog.Options{})
			if err != nil {
				return nil, err
			}
			return skipRecovery{inner}, nil
		},
	}
}

// TestInjectedBugCaughtAndShrunk: the torture must catch the skipped undo
// pass, shrink the reproducer to <= 10 operations, and the printed replay
// spec must re-trigger the failure.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	es := brokenEngine()
	var failure *Failure
	for seed := int64(0); seed < 50 && failure == nil; seed++ {
		spec := Spec{
			Engine: es.Name, Structure: "rbtree",
			Seed: seed, Ops: 30,
			Kind: nvm.CrashAtAny, Policy: nvm.EvictAll, // all dirty lines persist: torn state guaranteed visible
		}
		f, err := Torture(es, spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		failure = f
	}
	if failure == nil {
		t.Fatal("torture did not catch the skipped undo pass in 50 seeds")
	}
	t.Logf("caught: %s", failure.Detail)

	min, evals, err := Shrink(es, *failure)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if min.Spec.Keep == nil {
		t.Fatal("shrunk spec has no Keep set")
	}
	if len(min.Spec.Keep) > 10 {
		t.Fatalf("shrunk reproducer has %d ops, want <= 10 (%v)", len(min.Spec.Keep), min.Spec)
	}
	t.Logf("shrunk to %d op(s) in %d evaluations: %s", len(min.Spec.Keep), evals, min.Spec)

	// The one-line replay command must carry the whole failure: parse the
	// printed spec back and re-run it — same divergence.
	cmd := min.ReplayCommand()
	if !strings.HasPrefix(cmd, `go run ./cmd/torture -replay "`) {
		t.Fatalf("replay command malformed: %s", cmd)
	}
	reparsed, err := Parse(min.Spec.String())
	if err != nil {
		t.Fatalf("printed spec does not parse: %v", err)
	}
	again, err := RunSpec(es, reparsed)
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Fatalf("replayed spec %q did not re-trigger the failure", min.Spec)
	}
	t.Logf("replay re-triggered: %s", again.Detail)
}

// TestHealthyEnginePassesWhereBrokenFails pins the oracle's discrimination:
// the exact spec that convicts the broken engine passes on the real one.
func TestHealthyEnginePassesWhereBrokenFails(t *testing.T) {
	// rbtree: rebalancing spreads an op across many clobbers, so a skipped
	// undo pass reliably leaves a torn state. (The list's single-clobber
	// design is nearly undo-free by construction — crashing it mid-op
	// mostly lands in consistent states even with recovery disabled.)
	es := brokenEngine()
	spec := Spec{
		Engine: es.Name, Structure: "rbtree",
		Seed: 1, Ops: 20, Kind: nvm.CrashAtAny, Policy: nvm.EvictAll,
	}
	var failing *Failure
	for seed := int64(0); seed < 50 && failing == nil; seed++ {
		spec.Seed = seed
		f, err := Torture(es, spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		failing = f
	}
	if failing == nil {
		t.Fatal("no failing point found for the broken engine")
	}
	healthy := failing.Spec
	healthy.Engine = "pmdk"
	hes, err := engineSpec(healthy)
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunSpec(hes, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("healthy pmdk failed the broken engine's reproducer: %v", f.Error())
	}
}

// TestConcurrentTorture runs the concurrent-history oracle against healthy
// engines: per-thread streams over disjoint key spaces, warm-up on the fast
// path, a crash mid-flight, and per-worker linearization checks.
func TestConcurrentTorture(t *testing.T) {
	cells := []struct {
		engine, structure string
	}{
		{"clobber", "hashmap"},
		{"clobber", "bptree"},
		{"pmdk", "hashmap"},
		{"atlas", "skiplist"},
	}
	for _, c := range cells {
		c := c
		t.Run(c.engine+"/"+c.structure, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				spec := Spec{
					Engine: c.engine, Structure: c.structure,
					Seed: seed, Ops: 20, Threads: 3,
					Kind: nvm.CrashAtAny, Policy: nvm.EvictRandom,
				}
				es, err := engineSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				f, err := Torture(es, spec, 2)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if f != nil {
					t.Fatalf("seed %d: %v", seed, f.Error())
				}
			}
		})
	}
}

// TestConcurrentTortureGroupCommit reruns the concurrent oracle with the
// epoch group-commit coordinator enabled: crashes now land inside commit
// epochs shared by several worker streams (a leader's fence panic must
// propagate the power failure to every enlisted follower), and recovery must
// still produce a per-worker linearizable history.
func TestConcurrentTortureGroupCommit(t *testing.T) {
	cells := []struct {
		engine, structure string
	}{
		{"clobber", "hashmap"},
		{"pmdk", "rbtree"},
		{"mnemosyne", "hashmap"},
		{"atlas", "skiplist"},
	}
	for _, c := range cells {
		c := c
		t.Run(c.engine+"/"+c.structure, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				spec := Spec{
					Engine: c.engine, Structure: c.structure,
					Seed: seed, Ops: 20, Threads: 3,
					Kind: nvm.CrashAtAny, Policy: nvm.EvictRandom,
					GroupCommit: true,
				}
				es, err := engineSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				f, err := Torture(es, spec, 2)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if f != nil {
					t.Fatalf("seed %d: %v", seed, f.Error())
				}
			}
		})
	}
}

// TestConcurrentCatchesBrokenEngine: the concurrent oracle must also convict
// the skipped undo pass.
func TestConcurrentCatchesBrokenEngine(t *testing.T) {
	es := brokenEngine()
	es.Create = func(p *nvm.Pool, a *pmem.Allocator) (pds.Engine, error) {
		return undolog.Create(p, a, undolog.Options{
			Slots: 4, DataLogCap: 1 << 20, AllocLogCap: 128, FreeLogCap: 128,
		})
	}
	for seed := int64(0); seed < 30; seed++ {
		spec := Spec{
			Engine: es.Name, Structure: "rbtree",
			Seed: seed, Ops: 16, Threads: 2,
			Kind: nvm.CrashAtAny, Policy: nvm.EvictAll,
		}
		f, err := Torture(es, spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			t.Logf("caught at seed %d: %s", seed, f.Detail)
			if !strings.Contains(f.Error(), "-replay") {
				t.Fatalf("failure does not print a replay command: %s", f.Error())
			}
			return
		}
	}
	t.Fatal("concurrent torture did not catch the skipped undo pass in 30 seeds")
}

// TestLFHashMapProptest runs the differential crash oracle on the lock-free
// hashmap: sequential and concurrent cells on both clobber log formats,
// with the torn-line adversary in the mix so sampled crashes land on
// announcement lines too.
func TestLFHashMapProptest(t *testing.T) {
	cells := []struct {
		engine  string
		threads int
		policy  nvm.EvictPolicy
	}{
		{"clobber", 1, nvm.EvictRandom},
		{"clobber", 1, nvm.EvictTorn},
		{"clobber-line", 1, nvm.EvictTorn},
		{"clobber", 3, nvm.EvictRandom},
		{"clobber", 3, nvm.EvictTorn},
		{"clobber-line", 3, nvm.EvictRandom},
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%s/threads=%d/%s", c.engine, c.threads, c.policy), func(t *testing.T) {
			t.Parallel()
			seeds := int64(3)
			if testing.Short() {
				seeds = 1
			}
			for seed := int64(0); seed < seeds; seed++ {
				spec := Spec{
					Engine: c.engine, Structure: "lfhashmap",
					Seed: seed, Ops: 20, Threads: c.threads,
					Kind: nvm.CrashAtAny, Policy: c.policy,
				}
				es, err := engineSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				f, err := Torture(es, spec, 2)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if f != nil {
					t.Fatalf("seed %d: %v", seed, f.Error())
				}
			}
		})
	}
}
