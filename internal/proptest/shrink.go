package proptest

import (
	"fmt"

	"clobbernvm/internal/crashsweep"
)

// maxShrinkWindow bounds how many crash points of the victim op's window the
// predicate sweeps per candidate: enough to cover any single structure
// operation, small enough to keep shrinking fast.
const maxShrinkWindow = 512

// Shrink minimizes a sequential failure to a smallest reproducer: it
// truncates the sequence at the interrupted op, then delta-debugs (ddmin)
// the prefix, re-validating each candidate by sweeping the crash points of
// its final op's persistence window. Returns the minimized failure and the
// number of candidate evaluations spent.
//
// Only sequential failures shrink; concurrent failures replay as-is.
func Shrink(es crashsweep.EngineSpec, f Failure) (Failure, int, error) {
	if f.Spec.Threads > 1 {
		return f, 0, fmt.Errorf("proptest: concurrent failures do not shrink")
	}
	if f.Op < 0 {
		// Crash-free divergence: ops after the divergent one never ran.
		f.Op = f.Spec.Ops - 1
	}

	// Executed-op indices: the kept sequence up to and including the victim.
	kept := f.Spec.Keep
	if kept == nil {
		kept = make([]int, f.Spec.Ops)
		for i := range kept {
			kept[i] = i
		}
	}
	if f.Op >= len(kept) {
		f.Op = len(kept) - 1
	}
	prefix, victim := kept[:f.Op], kept[f.Op]

	evals := 0
	check := func(candidate []int) (Failure, bool) {
		evals++
		spec := f.Spec
		spec.Keep = append(append([]int{}, candidate...), victim)
		if g, ok := windowFails(es, spec); ok {
			return g, true
		}
		return Failure{}, false
	}

	// The truncated sequence must still fail; if not, the failure depends
	// on state this shrinker cannot isolate — return it untruncated.
	best, ok := check(prefix)
	if !ok {
		return f, evals, fmt.Errorf("proptest: failure did not reproduce under truncation")
	}

	// ddmin over the prefix: try dropping chunks at decreasing granularity.
	n := 2
	for len(prefix) >= 1 {
		chunk := (len(prefix) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(prefix); lo += chunk {
			hi := lo + chunk
			if hi > len(prefix) {
				hi = len(prefix)
			}
			candidate := append(append([]int{}, prefix[:lo]...), prefix[hi:]...)
			if g, ok := check(candidate); ok {
				prefix, best = candidate, g
				n = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if chunk == 1 {
			break
		}
		n *= 2
		if n > len(prefix) {
			n = len(prefix)
		}
	}
	return best, evals, nil
}

// windowFails re-runs spec's sequence, sweeping every crash point of the
// final op's persistence window (the events it emits beyond the prefix),
// and reports the first failing point. This makes the shrink predicate
// robust: a candidate "still fails" if ANY crash placement inside the
// victim op reproduces a divergence, not just the original ordinal.
func windowFails(es crashsweep.EngineSpec, spec Spec) (Failure, bool) {
	prefixSpec := spec
	prefixSpec.Keep = spec.Keep[:len(spec.Keep)-1]
	start, err := Measure(es, prefixSpec)
	if err != nil {
		return Failure{}, false
	}
	end, err := Measure(es, spec)
	if err != nil {
		return Failure{}, false
	}
	if end-start > maxShrinkWindow {
		end = start + maxShrinkWindow
	}
	for p := start + 1; p <= end; p++ {
		s := spec
		s.Point = p
		if f, err := RunSpec(es, s); err == nil && f != nil {
			return *f, true
		}
	}
	return Failure{}, false
}
