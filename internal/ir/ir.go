// Package ir defines a small SSA-flavoured intermediate representation with
// explicit memory operations and a control-flow graph. It is the substrate
// for the clobber-write identification passes in package analysis — this
// repository's stand-in for the LLVM IR the paper's compiler extension
// operates on (§4.4).
//
// A Func models one transaction body (the txfunc). Pointer values carry
// provenance (parameter, fresh allocation, field address, loaded pointer),
// which is what the alias analysis reasons about; scalar computation is
// opaque.
package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction kinds.
type Op int

// Instruction kinds.
const (
	OpParam  Op = iota // function parameter (pointer or scalar)
	OpConst            // integer constant
	OpAlloc            // fresh persistent allocation (pmalloc): a noalias pointer
	OpGEP              // pointer arithmetic: base + constant offset
	OpGEPVar           // pointer arithmetic with a non-constant offset
	OpLoad             // memory read through a pointer operand
	OpStore            // memory write: Args[0] = address, Args[1] = value
	OpArith            // opaque scalar computation over operands
	OpBr               // unconditional branch
	OpCondBr           // conditional branch: Args[0] = condition
	OpRet              // return (transaction exit)
)

func (o Op) String() string {
	switch o {
	case OpParam:
		return "param"
	case OpConst:
		return "const"
	case OpAlloc:
		return "alloc"
	case OpGEP:
		return "gep"
	case OpGEPVar:
		return "gepvar"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpArith:
		return "arith"
	case OpBr:
		return "br"
	case OpCondBr:
		return "condbr"
	case OpRet:
		return "ret"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Value is an SSA value and/or instruction. Instructions that produce no
// value (stores, branches) are still Values for uniform handling.
type Value struct {
	ID    int
	Op    Op
	Name  string
	Args  []*Value
	Const int64 // OpConst value or OpGEP offset
	Block *Block
	// Index is the instruction's position within its block.
	Index int
	// Ptr marks the value as pointer-typed (params must opt in).
	Ptr bool
}

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	var args []string
	for _, a := range v.Args {
		args = append(args, fmt.Sprintf("v%d", a.ID))
	}
	s := fmt.Sprintf("v%d = %s", v.ID, v.Op)
	if v.Op == OpConst || v.Op == OpGEP {
		s += fmt.Sprintf(" %d", v.Const)
	}
	if v.Name != "" {
		s += " " + v.Name
	}
	if len(args) > 0 {
		s += " (" + strings.Join(args, ", ") + ")"
	}
	return s
}

// Block is a basic block.
type Block struct {
	ID     int
	Name   string
	Instrs []*Value
	Succs  []*Block
	Preds  []*Block
	fn     *Func

	terminated bool
}

// Func is one transaction body.
type Func struct {
	Name   string
	Params []*Value
	Blocks []*Block

	nextVal int
}

// NewFunc creates a function. Pointer parameters are declared with a "*"
// prefix on the name (e.g. "*lst"); others are scalars.
func NewFunc(name string, params ...string) *Func {
	f := &Func{Name: name}
	for _, p := range params {
		ptr := strings.HasPrefix(p, "*")
		f.Params = append(f.Params, &Value{
			ID: f.nextID(), Op: OpParam, Name: strings.TrimPrefix(p, "*"), Ptr: ptr,
		})
	}
	f.NewBlock("entry")
	return f
}

func (f *Func) nextID() int {
	id := f.nextVal
	f.nextVal++
	return id
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Param returns the i-th parameter value.
func (f *Func) Param(i int) *Value { return f.Params[i] }

// NewBlock appends a new empty basic block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (b *Block) add(v *Value) *Value {
	if b.terminated {
		panic(fmt.Sprintf("ir: instruction after terminator in block %s", b.Name))
	}
	v.Block = b
	v.Index = len(b.Instrs)
	b.Instrs = append(b.Instrs, v)
	return v
}

// Const introduces an integer constant.
func (b *Block) Const(c int64) *Value {
	return b.add(&Value{ID: b.fn.nextID(), Op: OpConst, Const: c})
}

// Alloc introduces a fresh persistent allocation (noalias pointer).
func (b *Block) Alloc(name string) *Value {
	return b.add(&Value{ID: b.fn.nextID(), Op: OpAlloc, Name: name, Ptr: true})
}

// GEP computes base+offset with a constant offset.
func (b *Block) GEP(base *Value, offset int64) *Value {
	if !base.Ptr {
		panic("ir: GEP of non-pointer")
	}
	return b.add(&Value{ID: b.fn.nextID(), Op: OpGEP, Args: []*Value{base}, Const: offset, Ptr: true})
}

// GEPVar computes base+offset with a runtime offset.
func (b *Block) GEPVar(base, offset *Value) *Value {
	if !base.Ptr {
		panic("ir: GEPVar of non-pointer")
	}
	return b.add(&Value{ID: b.fn.nextID(), Op: OpGEPVar, Args: []*Value{base, offset}, Ptr: true})
}

// Load reads through addr. If ptrResult is true the loaded value is itself a
// pointer (e.g. following a next field).
func (b *Block) Load(addr *Value, ptrResult bool) *Value {
	if !addr.Ptr {
		panic("ir: load through non-pointer")
	}
	return b.add(&Value{ID: b.fn.nextID(), Op: OpLoad, Args: []*Value{addr}, Ptr: ptrResult})
}

// Store writes val through addr.
func (b *Block) Store(addr, val *Value) *Value {
	if !addr.Ptr {
		panic("ir: store through non-pointer")
	}
	return b.add(&Value{ID: b.fn.nextID(), Op: OpStore, Args: []*Value{addr, val}})
}

// Arith introduces an opaque scalar computation.
func (b *Block) Arith(name string, args ...*Value) *Value {
	return b.add(&Value{ID: b.fn.nextID(), Op: OpArith, Name: name, Args: args})
}

// Br terminates the block with an unconditional branch.
func (b *Block) Br(to *Block) {
	b.add(&Value{ID: b.fn.nextID(), Op: OpBr})
	b.terminated = true
	b.Succs = append(b.Succs, to)
	to.Preds = append(to.Preds, b)
}

// CondBr terminates the block with a two-way branch.
func (b *Block) CondBr(cond *Value, t, f *Block) {
	b.add(&Value{ID: b.fn.nextID(), Op: OpCondBr, Args: []*Value{cond}})
	b.terminated = true
	b.Succs = append(b.Succs, t, f)
	t.Preds = append(t.Preds, b)
	f.Preds = append(f.Preds, b)
}

// Ret terminates the block as a transaction exit.
func (b *Block) Ret() {
	b.add(&Value{ID: b.fn.nextID(), Op: OpRet})
	b.terminated = true
}

// Validate checks structural well-formedness: every block terminated, every
// non-entry block reachable via predecessors, operands defined.
func (f *Func) Validate() error {
	for _, b := range f.Blocks {
		if !b.terminated {
			return fmt.Errorf("ir: %s: block %s lacks a terminator", f.Name, b.Name)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s: block %s is empty", f.Name, b.Name)
		}
	}
	return nil
}

// ReversePostorder returns the blocks in reverse postorder from entry.
// Unreachable blocks are excluded.
func (f *Func) ReversePostorder() []*Block {
	seen := make(map[*Block]bool)
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Stores returns all store instructions in the function.
func (f *Func) Stores() []*Value {
	var out []*Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpStore {
				out = append(out, v)
			}
		}
	}
	return out
}

// Loads returns all load instructions in the function.
func (f *Func) Loads() []*Value {
	var out []*Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpLoad {
				out = append(out, v)
			}
		}
	}
	return out
}

// Dump renders the function as readable pseudo-IR, one instruction per
// line, for debugging and the clobberpass -dump flag.
func (f *Func) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Ptr {
			b.WriteByte('*')
		}
		b.WriteString(p.Name)
	}
	b.WriteString(")\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s", in)
			switch in.Op {
			case OpBr:
				fmt.Fprintf(&b, " -> %s", blk.Succs[0].Name)
			case OpCondBr:
				fmt.Fprintf(&b, " -> %s | %s", blk.Succs[0].Name, blk.Succs[1].Name)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
