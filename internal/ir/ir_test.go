package ir

import (
	"strings"
	"testing"
)

// diamond builds entry → (left|right) → exit.
func diamond() (*Func, *Block, *Block, *Block, *Block) {
	f := NewFunc("diamond", "*p")
	entry := f.Entry()
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	exit := f.NewBlock("exit")
	cond := entry.Arith("cond")
	entry.CondBr(cond, left, right)
	left.Arith("l")
	left.Br(exit)
	right.Arith("r")
	right.Br(exit)
	exit.Ret()
	return f, entry, left, right, exit
}

func TestValidate(t *testing.T) {
	f, _, _, _, _ := diamond()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewFunc("bad")
	g.Entry().Arith("x")
	if err := g.Validate(); err == nil {
		t.Fatal("unterminated function validated")
	}
}

func TestReversePostorder(t *testing.T) {
	f, entry, _, _, exit := diamond()
	rpo := f.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks", len(rpo))
	}
	if rpo[0] != entry {
		t.Fatal("rpo does not start at entry")
	}
	if rpo[3] != exit {
		t.Fatal("rpo does not end at exit")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f, entry, left, right, exit := diamond()
	dom := BuildDomTree(f)
	if !dom.BlockDominates(entry, exit) {
		t.Fatal("entry must dominate exit")
	}
	if dom.BlockDominates(left, exit) || dom.BlockDominates(right, exit) {
		t.Fatal("diamond arms must not dominate exit")
	}
	if !dom.BlockDominates(entry, left) || !dom.BlockDominates(left, left) {
		t.Fatal("basic dominance broken")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := NewFunc("loop", "*p")
	entry := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.Arith("init")
	entry.Br(head)
	c := head.Arith("cond")
	head.CondBr(c, body, exit)
	body.Arith("work")
	body.Br(head)
	exit.Ret()

	dom := BuildDomTree(f)
	if !dom.BlockDominates(head, body) || !dom.BlockDominates(head, exit) {
		t.Fatal("loop header must dominate body and exit")
	}
	if dom.BlockDominates(body, exit) {
		t.Fatal("loop body must not dominate exit")
	}
}

func TestInstrDominates(t *testing.T) {
	f := NewFunc("straight", "*p")
	b := f.Entry()
	a1 := b.Arith("a")
	a2 := b.Arith("b")
	b.Ret()
	dom := BuildDomTree(f)
	if !dom.Dominates(a1, a2) {
		t.Fatal("earlier instr must dominate later in same block")
	}
	if dom.Dominates(a2, a1) {
		t.Fatal("later instr must not dominate earlier")
	}
}

func TestReachable(t *testing.T) {
	f, entry, left, right, exit := diamond()
	dom := BuildDomTree(f)
	e0 := entry.Instrs[0]
	l0 := left.Instrs[0]
	r0 := right.Instrs[0]
	x0 := exit.Instrs[0]
	if !dom.Reachable(e0, l0) || !dom.Reachable(e0, x0) {
		t.Fatal("entry must reach arms and exit")
	}
	if dom.Reachable(l0, r0) {
		t.Fatal("left arm must not reach right arm")
	}
	if !dom.Reachable(l0, x0) {
		t.Fatal("left arm must reach exit")
	}
	if dom.Reachable(x0, e0) {
		t.Fatal("exit must not reach entry")
	}
}

func TestReachableInLoop(t *testing.T) {
	f := NewFunc("loop", "*p")
	entry := f.Entry()
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.Br(body)
	w1 := body.Arith("w1")
	w2 := body.Arith("w2")
	body.CondBr(body.Arith("c"), body, exit)
	exit.Ret()
	dom := BuildDomTree(f)
	// In a loop, a later instruction reaches an earlier one via the back
	// edge.
	if !dom.Reachable(w2, w1) {
		t.Fatal("back edge reachability missing")
	}
}

func TestBuilderPanics(t *testing.T) {
	f := NewFunc("p", "scalar")
	b := f.Entry()
	defer func() {
		if recover() == nil {
			t.Fatal("GEP of scalar did not panic")
		}
	}()
	b.GEP(f.Param(0), 8)
}

func TestInstrAfterTerminatorPanics(t *testing.T) {
	f := NewFunc("p")
	b := f.Entry()
	b.Ret()
	defer func() {
		if recover() == nil {
			t.Fatal("instruction after terminator did not panic")
		}
	}()
	b.Arith("late")
}

func TestStoresLoadsEnumeration(t *testing.T) {
	f := NewFunc("m", "*p")
	b := f.Entry()
	v := b.Load(f.Param(0), false)
	b.Store(f.Param(0), v)
	b.Ret()
	if len(f.Loads()) != 1 || len(f.Stores()) != 1 {
		t.Fatalf("loads=%d stores=%d", len(f.Loads()), len(f.Stores()))
	}
}

func TestDump(t *testing.T) {
	f, _, _, _, _ := diamond()
	out := f.Dump()
	for _, want := range []string{"func diamond(*p)", "entry:", "left:", "condbr", "-> left | right"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}
