package ir

// DomTree holds the dominator relation for a function, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
type DomTree struct {
	idom map[*Block]*Block
	rpo  map[*Block]int
}

// BuildDomTree computes the dominator tree of f's reachable blocks.
func BuildDomTree(f *Func) *DomTree {
	order := f.ReversePostorder()
	rpo := make(map[*Block]int, len(order))
	for i, b := range order {
		rpo[b] = i
	}
	idom := make(map[*Block]*Block, len(order))
	entry := f.Entry()
	idom[entry] = entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{idom: idom, rpo: rpo}
}

// BlockDominates reports whether block a dominates block b.
func (d *DomTree) BlockDominates(a, b *Block) bool {
	if _, ok := d.idom[b]; !ok {
		return false // b unreachable
	}
	for {
		if b == a {
			return true
		}
		parent := d.idom[b]
		if parent == b {
			return false // reached entry
		}
		b = parent
	}
}

// Dominates reports whether instruction x dominates instruction y:
// every path from entry to y passes through x first.
func (d *DomTree) Dominates(x, y *Value) bool {
	if x.Block == y.Block {
		return x.Index < y.Index
	}
	return d.BlockDominates(x.Block, y.Block)
}

// Reachable reports whether instruction y can execute after instruction x on
// some path (x's successors eventually reach y, or y follows x in the same
// block, or they share a cycle).
func (d *DomTree) Reachable(x, y *Value) bool {
	if x.Block == y.Block && x.Index < y.Index {
		return true
	}
	// BFS over successors from x's block.
	seen := map[*Block]bool{}
	queue := append([]*Block(nil), x.Block.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == y.Block {
			return true
		}
		queue = append(queue, b.Succs...)
	}
	return false
}
