module clobbernvm

go 1.23
