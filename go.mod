module clobbernvm

go 1.22
