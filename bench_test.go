// Benchmarks regenerating the per-operation costs behind every table and
// figure of the paper's evaluation (§5). Each BenchmarkFigN corresponds to
// one figure; the full parameter sweeps (CSV output) live in
// internal/harness and cmd/benchfigs.
//
//	go test -bench=. -benchmem
package clobbernvm_test

import (
	"fmt"
	"sync"
	"testing"

	clobbernvm "clobbernvm"
	"clobbernvm/internal/analysis"
	"clobbernvm/internal/harness"
	"clobbernvm/internal/ir"
	"clobbernvm/internal/memcache"
	"clobbernvm/internal/vacation"
	"clobbernvm/internal/yada"
	"clobbernvm/internal/ycsb"
)

// benchScale provisions pools large enough for -benchtime sweeps. The thread
// sweep feeds the scaling benchmarks; single-operation benchmarks ignore it.
var benchScale = func() harness.Scale {
	sc := harness.SmallScale
	sc.PoolBytes = 1 << 27
	sc.Threads = []int{1, 2, 4, 8}
	return sc
}()

// benchState caches a provisioned pool+engine+structure across the testing
// framework's repeated invocations of a sub-benchmark (which probe with
// growing b.N): re-provisioning a gigabyte pool per probe would leave GC
// work inside the timed region and distort ns/op.
type benchState struct {
	setup *harness.Setup
	store clobbernvm.Store
	gen   *ycsb.Generator
	next  int
}

// benchStates is guarded by benchStatesMu: sub-benchmark bodies normally run
// one at a time, but the cache must stay correct if a future benchmark calls
// getBenchState from concurrent goroutines (or under -cpu sweeps).
var (
	benchStatesMu sync.Mutex
	benchStates   = map[string]*benchState{}
)

func getBenchState(b *testing.B, st harness.StructureKind, ek harness.EngineKind) *benchState {
	b.Helper()
	benchStatesMu.Lock()
	defer benchStatesMu.Unlock()
	key := string(st) + "/" + string(ek)
	if s, ok := benchStates[key]; ok {
		return s
	}
	setup, err := harness.NewSetup(ek, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	store, err := harness.OpenStructure(st, setup.Engine)
	if err != nil {
		b.Fatal(err)
	}
	s := &benchState{
		setup: setup,
		store: store,
		gen:   ycsb.NewGenerator(ycsb.WorkloadLoad, 0, harness.KeySize(st), harness.ValueSize, 1),
	}
	// Warm population outside any timer.
	for i := 0; i < 2000; i++ {
		if err := store.Insert(0, s.gen.Key(s.next), s.gen.Next().Value); err != nil {
			b.Fatal(err)
		}
		s.next++
	}
	benchStates[key] = s
	return s
}

// BenchmarkFig6Insert measures one data-structure insert transaction per
// iteration, per engine per structure (the Figure 6 single-thread points).
func BenchmarkFig6Insert(b *testing.B) {
	engines := []harness.EngineKind{
		harness.EngineClobber, harness.EnginePMDK,
		harness.EngineMnemosyne, harness.EngineAtlas,
	}
	for _, st := range harness.AllStructures {
		for _, ek := range engines {
			b.Run(fmt.Sprintf("%s/%s", st, ek), func(b *testing.B) {
				s := getBenchState(b, st, ek)
				s0 := s.setup.Engine.Stats().Snapshot()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.store.Insert(0, s.gen.Key(s.next), s.gen.Next().Value); err != nil {
						b.Fatal(err)
					}
					s.next++
				}
				b.StopTimer()
				d := s.setup.Engine.Stats().Snapshot().Sub(s0)
				b.ReportMetric(float64(d.TotalLogEntries())/float64(b.N), "logentries/op")
				b.ReportMetric(float64(d.TotalLogBytes())/float64(b.N), "logB/op")
			})
			// The sub-benchmark has fully finished probing: release its
			// pool (two large arrays) before provisioning the next one.
			benchStatesMu.Lock()
			delete(benchStates, string(st)+"/"+string(ek))
			benchStatesMu.Unlock()
		}
	}
}

// BenchmarkYCSBLoadScaling measures multi-thread YCSB-Load insert throughput
// per engine across the benchScale thread sweep (the Figure 6/7 scaling
// axis). Each iteration performs one insert; b.N operations are partitioned
// across the worker goroutines with disjoint key ranges, so ns/op is the
// wall-clock cost per operation at that concurrency and ops/s scales with
// the thread count when the engine scales.
func BenchmarkYCSBLoadScaling(b *testing.B) {
	engines := []harness.EngineKind{
		harness.EngineClobber, harness.EnginePMDK,
		harness.EngineMnemosyne, harness.EngineAtlas,
	}
	for _, ek := range engines {
		for _, threads := range benchScale.Threads {
			b.Run(fmt.Sprintf("%s/threads=%d", ek, threads), func(b *testing.B) {
				setup, err := harness.NewSetup(ek, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				store, err := harness.OpenStructure(harness.StructHashMap, setup.Engine)
				if err != nil {
					b.Fatal(err)
				}
				// Warm population outside the timer.
				gw := ycsb.NewGenerator(ycsb.WorkloadLoad, 0, 8, harness.ValueSize, 1)
				for i := 0; i < 2000; i++ {
					if err := store.Insert(0, gw.Key(i), gw.Next().Value); err != nil {
						b.Fatal(err)
					}
				}
				per := b.N / threads
				if per == 0 {
					per = 1
				}
				// Pregenerate each worker's keys and values so the timed
				// region holds only engine work, not workload synthesis.
				type op struct{ key, value []byte }
				work := make([][]op, threads)
				for t := 0; t < threads; t++ {
					g := ycsb.NewGenerator(ycsb.WorkloadLoad, 0, 8, harness.ValueSize, int64(t)*7919)
					ops := make([]op, per)
					base := 2000 + t*per
					for i := range ops {
						ops[i] = op{key: g.Key(base + i), value: g.Next().Value}
					}
					work[t] = ops
				}
				var wg sync.WaitGroup
				errs := make([]error, threads)
				b.ResetTimer()
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						for _, o := range work[t] {
							if err := store.Insert(t, o.key, o.value); err != nil {
								errs[t] = err
								return
							}
						}
					}(t)
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// lockfreeBenchScale widens the thread sweep past the standard 8-thread axis
// for the lock-free vs stripe-locked comparison. Kept separate from
// benchScale so the >8-thread points (and the slot sizing they require) do
// not leak into the figure benchmarks that the frozen baselines anchor.
var lockfreeBenchScale = func() harness.Scale {
	sc := harness.SmallScale
	sc.PoolBytes = 1 << 27
	sc.Threads = []int{1, 2, 4, 8, 16, 32}
	return sc
}()

// BenchmarkLockFreeScaling measures clobber-engine insert throughput on the
// stripe-locked hashmap and the announcement-record lock-free hashmap across
// the widened thread sweep — the benchmark form of the BENCH_PR9.json
// lockfree_sweep rows, where the locked structure flattens at high thread
// counts and the lock-free one must not.
func BenchmarkLockFreeScaling(b *testing.B) {
	structures := []harness.StructureKind{harness.StructHashMap, harness.StructLFHashMap}
	for _, st := range structures {
		for _, threads := range lockfreeBenchScale.Threads {
			b.Run(fmt.Sprintf("%s/threads=%d", st, threads), func(b *testing.B) {
				setup, err := harness.NewSetup(harness.EngineClobber, lockfreeBenchScale)
				if err != nil {
					b.Fatal(err)
				}
				store, err := harness.OpenStructure(st, setup.Engine)
				if err != nil {
					b.Fatal(err)
				}
				ks := harness.KeySize(st)
				gw := ycsb.NewGenerator(ycsb.WorkloadLoad, 0, ks, harness.ValueSize, 1)
				for i := 0; i < 2000; i++ {
					if err := store.Insert(0, gw.Key(i), gw.Next().Value); err != nil {
						b.Fatal(err)
					}
				}
				per := b.N / threads
				if per == 0 {
					per = 1
				}
				type op struct{ key, value []byte }
				work := make([][]op, threads)
				for t := 0; t < threads; t++ {
					g := ycsb.NewGenerator(ycsb.WorkloadLoad, 0, ks, harness.ValueSize, int64(t)*7919)
					ops := make([]op, per)
					base := 2000 + t*per
					for i := range ops {
						ops[i] = op{key: g.Key(base + i), value: g.Next().Value}
					}
					work[t] = ops
				}
				var wg sync.WaitGroup
				errs := make([]error, threads)
				b.ResetTimer()
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						for _, o := range work[t] {
							if err := store.Insert(t, o.key, o.value); err != nil {
								errs[t] = err
								return
							}
						}
					}(t)
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7Variant measures the §5.3 logging-component breakdown on the
// hashmap (the structure Figure 7 discusses in most detail).
func BenchmarkFig7Variant(b *testing.B) {
	variants := []harness.EngineKind{
		harness.EngineNoLog, harness.EngineClobberVLogOnly,
		harness.EngineClobberCLogOnly, harness.EngineClobber, harness.EnginePMDK,
	}
	for _, ek := range variants {
		b.Run(string(ek), func(b *testing.B) {
			setup, err := harness.NewSetup(ek, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			store, err := harness.OpenStructure(harness.StructHashMap, setup.Engine)
			if err != nil {
				b.Fatal(err)
			}
			g := ycsb.NewGenerator(ycsb.WorkloadLoad, 0, 8, harness.ValueSize, 1)
			p0 := setup.Pool.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.Insert(0, g.Key(i), g.Next().Value); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := setup.Pool.Stats().Sub(p0)
			b.ReportMetric(float64(d.Fences)/float64(b.N), "fences/op")
			b.ReportMetric(float64(d.Flushes)/float64(b.N), "flushes/op")
		})
	}
}

// BenchmarkFig8IDOMeter measures the iDO instrumentation path (Figure 8's
// comparison system) on skiplist inserts, reporting its boundary-record
// traffic.
func BenchmarkFig8IDOMeter(b *testing.B) {
	tab, err := harness.Fig8(harness.Scale{
		Entries: 500, Ops: 500, Threads: []int{1},
		PoolBytes: 1 << 27, Runs: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = tab
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full Figure 8 measurement per iteration at micro scale.
		if _, err := harness.Fig8(harness.Scale{
			Entries: 200, Ops: 200, Threads: []int{1},
			PoolBytes: 1 << 26, Runs: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Recovery measures one crash-and-recover cycle per iteration
// (Figure 9), clobber vs pmdk.
func BenchmarkFig9Recovery(b *testing.B) {
	sc := harness.Scale{
		Entries: 1000, Ops: 100, Threads: []int{1},
		PoolBytes: 1 << 27, Latency: benchScale.Latency, Runs: 1,
	}
	for _, ek := range []harness.EngineKind{harness.EngineClobber, harness.EnginePMDK} {
		b.Run(string(ek), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, _, err := harness.MeasureRecovery(ek, harness.StructHashMap, sc, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(d.Seconds()*1000, "recovery-ms")
			}
		})
	}
}

// BenchmarkFig10Memcached measures one memcached request per iteration for
// each §5.6 mix, per engine.
func BenchmarkFig10Memcached(b *testing.B) {
	for _, mix := range memcache.AllMixes {
		for _, ek := range []harness.EngineKind{
			harness.EngineClobber, harness.EnginePMDK, harness.EngineMnemosyne,
		} {
			b.Run(fmt.Sprintf("%s/%s", mix.Name, ek), func(b *testing.B) {
				setup, err := harness.NewSetup(ek, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				cache, err := memcache.New(setup.Engine, 34,
					memcache.Options{Capacity: 1 << 22, Lock: memcache.LockRW})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				if _, err := memcache.Drive(cache, memcache.DriverConfig{
					Mix: mix, Threads: 1, Ops: b.N, KeySpace: 10000,
					KeySize: 16, ValSize: 64, Seed: 7,
				}); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkFig11Vacation measures one vacation task per iteration, per table
// structure, per engine (Figure 11).
func BenchmarkFig11Vacation(b *testing.B) {
	for _, kind := range []vacation.TreeKind{vacation.RBTreeTables, vacation.AVLTreeTables} {
		for _, ek := range []harness.EngineKind{
			harness.EngineNoLog, harness.EngineClobber, harness.EnginePMDK, harness.EngineMnemosyne,
		} {
			b.Run(fmt.Sprintf("%s/%s", kind, ek), func(b *testing.B) {
				setup, err := harness.NewSetup(ek, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				mgr, err := vacation.New(setup.Engine, 34, kind)
				if err != nil {
					b.Fatal(err)
				}
				if err := mgr.Populate(0, 200, 1); err != nil {
					b.Fatal(err)
				}
				tasks := vacation.GenTasks(b.N, 4, 200, 2)
				b.ResetTimer()
				for _, task := range tasks {
					if err := mgr.RunTask(0, task); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12Yada measures one complete refinement run per iteration
// (Figure 12) at a fixed small input, per engine.
func BenchmarkFig12Yada(b *testing.B) {
	for _, ek := range []harness.EngineKind{
		harness.EngineNoLog, harness.EnginePMDK, harness.EngineClobber,
	} {
		b.Run(string(ek), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				setup, err := harness.NewSetup(ek, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				ms, err := yada.NewMesh(setup.Engine, 34, 1<<14)
				if err != nil {
					b.Fatal(err)
				}
				if err := ms.Bootstrap(0, yada.GenInput(30, 42)); err != nil {
					b.Fatal(err)
				}
				if err := ms.SeedQueue(0, 22); err != nil {
					b.Fatal(err)
				}
				if _, err := ms.RefineAll(0, 22, 10000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Identification measures refined vs conservative clobber
// identification on skiplist inserts (Figure 13's runtime side).
func BenchmarkFig13Identification(b *testing.B) {
	for _, ek := range []harness.EngineKind{
		harness.EngineClobber, harness.EngineClobberConservative,
	} {
		b.Run(string(ek), func(b *testing.B) {
			setup, err := harness.NewSetup(ek, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			store, err := harness.OpenStructure(harness.StructSkipList, setup.Engine)
			if err != nil {
				b.Fatal(err)
			}
			g := ycsb.NewGenerator(ycsb.WorkloadLoad, 0, 8, harness.ValueSize, 1)
			s0 := setup.Engine.Stats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.Insert(0, g.Key(i), g.Next().Value); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := setup.Engine.Stats().Snapshot().Sub(s0)
			b.ReportMetric(float64(d.LogEntries)/float64(b.N), "clobberentries/op")
		})
	}
}

// BenchmarkFig14Passes measures the compiler passes' latency per corpus
// transaction (Figure 14): frontend only vs frontend + clobber
// identification.
func BenchmarkFig14Passes(b *testing.B) {
	b.Run("frontend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, build := range corpusBuilders() {
				f := build()
				if err := f.Validate(); err != nil {
					b.Fatal(err)
				}
				ir.BuildDomTree(f)
			}
		}
	})
	b.Run("with-passes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, build := range corpusBuilders() {
				f := build()
				if err := f.Validate(); err != nil {
					b.Fatal(err)
				}
				analysis.Analyze(f)
			}
		}
	})
}

func corpusBuilders() []func() *ir.Func {
	return []func() *ir.Func{
		analysis.ListInsert, analysis.BPTreeInsert, analysis.HashmapInsert,
		analysis.SkiplistInsert, analysis.RBTreeInsert, analysis.MemcachedSet,
		analysis.VacationReserve, analysis.YadaRefine,
	}
}
