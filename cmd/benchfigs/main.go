// Command benchfigs regenerates the paper's evaluation figures as CSV, the
// counterpart of the artifact's run_all.sh (which dumps fig*.csv files).
//
// Usage:
//
//	benchfigs -fig all -scale small -out .
//	benchfigs -fig 6 -scale paper
//
// Figures: 6 (data-structure throughput), 7 (logging breakdown), 8 (iDO
// comparison), 9 (recovery), 10 (memcached), 11 (vacation), 12 (yada),
// 13 (optimization effectiveness, plus the static pass counts), 14 (compile
// latency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"clobbernvm/internal/harness"
)

// parseRates parses a comma-separated rate sweep like "4000,16000".
func parseRates(s string) ([]float64, error) {
	var list []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		list = append(list, r)
	}
	return list, nil
}

// parseThreads parses a comma-separated thread sweep like "1,2,4,8,16".
func parseThreads(s string) ([]int, error) {
	var list []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", f)
		}
		list = append(list, n)
	}
	return list, nil
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6..14, 13static, ext-ycsb, ext-fence, or all")
	scale := flag.String("scale", "small", "experiment scale: small, medium or paper")
	out := flag.String("out", ".", "output directory for CSV files")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark report to this path instead of CSV figures")
	threads := flag.String("threads", "", "comma-separated thread sweep overriding the scale's default (e.g. 1,2,4,8,16,32)")
	groupCommit := flag.Bool("group-commit", false, "enable epoch-based group commit; -json reports add the on/off fence-amortization sweep")
	shards := flag.String("shards", "", "comma-separated shard-count sweep added to the -json report (e.g. 1,2,4,8); the first count must be 1 — it is the unsharded recovery baseline the speedup column divides by")
	lineLog := flag.Bool("linelog", false, "add the write-combined line-writer on/off flush+fence sweep to the -json report")
	lockfree := flag.String("lockfree", "", "comma-separated thread sweep comparing the stripe-locked and lock-free hashmaps, added to the -json report (e.g. 1,2,4,8,16,32); independent of -threads so the >8-thread axis stays out of the other figures")
	slo := flag.Bool("slo", false, "add the open-loop serving tail-latency sweep (front cache off vs on per offered rate) to the -json report")
	sloOnly := flag.Bool("slo-only", false, "write a -json report containing only the SLO sweep, skipping the base figure benchmarks (implies -slo)")
	sloRates := flag.String("slo-rates", "", "comma-separated offered rates in ops/sec for the SLO sweep (default 4000,16000)")
	sloOps := flag.Int("slo-ops", 0, "operations per SLO run (default 4000; 0 with -slo-seconds set bounds by time instead)")
	sloSeconds := flag.Float64("slo-seconds", 0, "wall-clock bound per SLO run when -slo-ops is 0")
	sloConns := flag.Int("slo-conns", 0, "simulated client connections for the SLO sweep (default 8)")
	sloShards := flag.Int("slo-shards", 1, "shard count for the SLO sweep's server stack")
	sloLanes := flag.Int("slo-write-lanes", 0, "write lanes per shard for the SLO sweep (0/1 = classic single-lane layout)")
	sloReps := flag.Int("slo-reps", 0, "interleaved repetitions per SLO point, pooled into one row (default 1)")
	flag.Parse()
	if *sloOnly {
		*slo = true
	}

	sc := harness.SmallScale
	switch *scale {
	case "small":
	case "medium":
		sc = harness.MediumScale
	case "paper":
		sc = harness.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "benchfigs: unknown scale %q (want small, medium or paper)\n", *scale)
		os.Exit(2)
	}
	if *threads != "" {
		list, err := parseThreads(*threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: -threads: %v\n", err)
			os.Exit(2)
		}
		sc.Threads = list
	}
	sc.GroupCommit = *groupCommit

	if *shards != "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "benchfigs: -shards is a -json report sweep; pass -json too")
		os.Exit(2)
	}
	if *lineLog && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "benchfigs: -linelog is a -json report sweep; pass -json too")
		os.Exit(2)
	}
	if *lockfree != "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "benchfigs: -lockfree is a -json report sweep; pass -json too")
		os.Exit(2)
	}
	if *slo && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "benchfigs: -slo is a -json report sweep; pass -json too")
		os.Exit(2)
	}

	if *jsonOut != "" {
		start := time.Now()
		var rep *harness.BenchReport
		var err error
		if *sloOnly {
			// SLO-only reports skip the figure benchmarks: the sweep carries
			// its own configuration columns, so the base fields just record
			// provenance.
			rep = &harness.BenchReport{
				GeneratedAt: time.Now().UTC().Format(time.RFC3339),
				Scale:       *scale,
				Entries:     sc.Entries,
				Ops:         sc.Ops,
				Threads:     sc.Threads,
			}
		} else if rep, err = harness.RunBenchReport(sc, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: report: %v\n", err)
			os.Exit(1)
		}
		if *shards != "" {
			counts, err := parseThreads(*shards)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfigs: -shards: %v\n", err)
				os.Exit(2)
			}
			if counts[0] != 1 {
				fmt.Fprintln(os.Stderr, "benchfigs: -shards sweep must start at 1 (the unsharded baseline)")
				os.Exit(2)
			}
			rep.ShardSweep, err = harness.RunShardSweep(sc, counts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfigs: shard sweep: %v\n", err)
				os.Exit(1)
			}
		}
		if *lineLog {
			rep.LineLogSweep, err = harness.RunLineLogSweep(sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfigs: linelog sweep: %v\n", err)
				os.Exit(1)
			}
		}
		if *lockfree != "" {
			counts, err := parseThreads(*lockfree)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfigs: -lockfree: %v\n", err)
				os.Exit(2)
			}
			rep.LockfreeSweep, err = harness.RunLockfreeSweep(sc, counts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfigs: lockfree sweep: %v\n", err)
				os.Exit(1)
			}
		}
		if *slo {
			scSLO := sc
			scSLO.Shards = *sloShards
			cfg := harness.SLOConfig{
				Scale:      scSLO,
				Ops:        *sloOps,
				Seconds:    *sloSeconds,
				Conns:      *sloConns,
				WriteLanes: *sloLanes,
				Reps:       *sloReps,
			}
			if *sloRates != "" {
				rates, err := parseRates(*sloRates)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchfigs: -slo-rates: %v\n", err)
					os.Exit(2)
				}
				cfg.Rates = rates
			}
			rep.SLOSweep, err = harness.RunSLOSweep(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfigs: slo sweep: %v\n", err)
				os.Exit(1)
			}
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("report     %4d rows  %8.1fs  -> %s\n",
			len(rep.Fig6Insert)+len(rep.YCSBLoadScaling)+len(rep.ShardSweep)+
				len(rep.LineLogSweep)+len(rep.LockfreeSweep)+len(rep.SLOSweep),
			time.Since(start).Seconds(), *jsonOut)
		return
	}

	runners := map[string]func() (*harness.Table, error){
		"6":        func() (*harness.Table, error) { return harness.Fig6(sc) },
		"7":        func() (*harness.Table, error) { return harness.Fig7(sc) },
		"8":        func() (*harness.Table, error) { return harness.Fig8(sc) },
		"9":        func() (*harness.Table, error) { return harness.Fig9(sc) },
		"10":       func() (*harness.Table, error) { return harness.Fig10(sc) },
		"11":       func() (*harness.Table, error) { return harness.Fig11(sc) },
		"12":       func() (*harness.Table, error) { return harness.Fig12(sc) },
		"13":       func() (*harness.Table, error) { return harness.Fig13(sc) },
		"13static": func() (*harness.Table, error) { return harness.Fig13Static(), nil },
		"14":       func() (*harness.Table, error) { return harness.Fig14(0), nil },
		// Extensions beyond the paper's figures.
		"ext-ycsb":  func() (*harness.Table, error) { return harness.ExtYCSBMixes(sc) },
		"ext-fence": func() (*harness.Table, error) { return harness.ExtFenceAblation(sc) },
	}
	order := []string{"6", "7", "8", "9", "10", "11", "12", "13", "13static", "14",
		"ext-ycsb", "ext-fence"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*fig, ",") {
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "benchfigs: unknown figure %q\n", f)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	for _, f := range selected {
		start := time.Now()
		tab, err := runners[f]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: fig%s: %v\n", f, err)
			os.Exit(1)
		}
		path := filepath.Join(*out, "fig"+f+".csv")
		if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("fig%-9s %4d rows  %8.1fs  -> %s\n",
			f, len(tab.Rows), time.Since(start).Seconds(), path)
	}
}
