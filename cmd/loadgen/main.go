// Command loadgen drives an open-loop memcached-text-protocol load against
// any server address — cmd/memcachedsim, or a real memcached — and reports
// the injection-to-reply latency distribution plus achieved-vs-offered
// throughput.
//
//	loadgen -addr 127.0.0.1:11211 -rate 50000 -ops 100000
//	loadgen -addr 127.0.0.1:11211 -rate 20000 -seconds 10 -zipf 1.2 -get-frac 0.9
//
// The generator is open-loop: arrival times come from the offered-rate
// schedule, never from the server's replies, so a stalling server shows up
// as measured queueing delay (coordinated omission) rather than a politely
// slowed-down driver. A non-zero exit means transport errors — a server
// that sheds load with SERVER_ERROR replies is recorded in "rejected", not
// failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"clobbernvm/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "server TCP address")
	rate := flag.Float64("rate", 10000, "offered load in ops/sec across all connections")
	ops := flag.Int("ops", 0, "bound the run by total injected operations")
	seconds := flag.Float64("seconds", 0, "bound the run by wall-clock time (used when -ops is 0; default 5s)")
	conns := flag.Int("conns", 8, "simulated client connections")
	pipeline := flag.Int("pipeline", 16, "per-connection outstanding-request window")
	keys := flag.Int("keys", 2048, "keyspace size (keys are lg-%06d)")
	zipf := flag.Float64("zipf", 1.2, "zipfian key-popularity skew (<=1 = uniform)")
	getFrac := flag.Float64("get-frac", 0.9, "fraction of gets in the mix")
	setFrac := flag.Float64("set-frac", 0.1, "fraction of sets in the mix")
	delFrac := flag.Float64("delete-frac", 0, "fraction of deletes in the mix")
	valueBytes := flag.Int("value-bytes", 64, "stored payload size")
	seed := flag.Int64("seed", 1, "schedule/key/mix seed")
	jsonOut := flag.String("json", "", "also write the result as JSON to this file")
	flag.Parse()

	if *ops == 0 && *seconds == 0 {
		*seconds = 5
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:       *addr,
		Conns:      *conns,
		Rate:       *rate,
		Ops:        *ops,
		Duration:   time.Duration(*seconds * float64(time.Second)),
		Keys:       *keys,
		ZipfS:      *zipf,
		GetFrac:    *getFrac,
		SetFrac:    *setFrac,
		DeleteFrac: *delFrac,
		ValueBytes: *valueBytes,
		Pipeline:   *pipeline,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: offered %.0f ops/s achieved %.0f ops/s over %.2fs (sent=%d completed=%d rejected=%d errors=%d get-hits=%d)\n",
		res.Offered, res.Achieved, res.Elapsed.Seconds(),
		res.Sent, res.Completed, res.Rejected, res.Errors, res.GetHits)
	fmt.Printf("loadgen: latency p50=%s p95=%s p99=%s p999=%s max=%s\n",
		time.Duration(res.Latency.P50), time.Duration(res.Latency.P95),
		time.Duration(res.Latency.P99), time.Duration(res.Latency.P999),
		time.Duration(res.Latency.Max))
	for _, kind := range []string{"get", "set", "delete"} {
		s := res.PerOp[kind]
		if s.Count == 0 {
			continue
		}
		fmt.Printf("loadgen: %-6s n=%-8d p50=%s p99=%s\n", kind, s.Count,
			time.Duration(s.P50), time.Duration(s.P99))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}
