// Command benchguard compares two benchfigs -json reports and fails when the
// current report regresses the clobber engine's single-thread Fig. 6 insert
// latency beyond a threshold — the tripwire CI runs against the frozen
// BENCH_PR2.json baseline so persistence-path slowdowns surface as a red
// build rather than a quiet drift.
//
//	benchguard -baseline BENCH_PR2.json -current bench-report.json
//	benchguard -baseline BENCH_PR2.json -current fresh.json -max-regress 0.10
//	benchguard -baseline BENCH_PR8.json -current fresh.json -checks linelog
//
// Only clobber single-thread rows are compared: multi-thread points wobble
// with runner load, and the comparison engines' numbers are reproduced
// relatives, not guarded absolutes. A structure present in the baseline but
// missing from the current report is an error (a silently dropped sweep must
// not pass the guard). -checks selects a subset of the guards (fig6, shard,
// linelog, lockfree, slo) when a baseline only anchors one of them; the slo
// guard is self-anchoring (front-cache off vs on pairs inside the current
// report) and ignores the baseline. Exit status: 0 when
// every structure is within the threshold, 1 on any regression or missing
// row, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"clobbernvm/internal/harness"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR2.json", "baseline report (the frozen reference)")
	currentPath := flag.String("current", "", "current report to check against the baseline")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated single-thread ns/op regression (0.20 = +20%)")
	engine := flag.String("engine", "clobber", "engine whose single-thread inserts are guarded")
	checks := flag.String("checks", "fig6,shard,linelog", "comma-separated guard subset to run: fig6, shard, linelog, lockfree, slo")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	enabled := map[string]bool{}
	for _, c := range strings.Split(*checks, ",") {
		c = strings.TrimSpace(c)
		switch c {
		case "fig6", "shard", "linelog", "lockfree", "slo":
			enabled[c] = true
		default:
			fmt.Fprintf(os.Stderr, "benchguard: unknown check %q (want fig6, shard, linelog, lockfree or slo)\n", c)
			os.Exit(2)
		}
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	failed := false
	if enabled["fig6"] {
		baseNS := singleThreadNS(base, *engine)
		curNS := singleThreadNS(cur, *engine)
		if len(baseNS) == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: baseline %s has no single-thread %s rows\n", *baselinePath, *engine)
			os.Exit(2)
		}
		for _, st := range sortedKeys(baseNS) {
			b := baseNS[st]
			c, ok := curNS[st]
			if !ok {
				fmt.Printf("FAIL %-9s missing from current report\n", st)
				failed = true
				continue
			}
			ratio := c/b - 1
			status := "ok  "
			if ratio > *maxRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-9s baseline %9.0f ns/op  current %9.0f ns/op  %+6.1f%% (limit +%.0f%%)\n",
				status, st, b, c, 100*ratio, 100**maxRegress)
		}
	}
	if enabled["shard"] && guardShardRows(base, cur, *maxRegress) {
		failed = true
	}
	if enabled["linelog"] && guardLineLogRows(base, cur, *maxRegress) {
		failed = true
	}
	if enabled["lockfree"] && guardLockfreeRows(base, cur, *maxRegress) {
		failed = true
	}
	if enabled["slo"] && guardSLORows(cur, *maxRegress) {
		failed = true
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: regression beyond threshold")
		os.Exit(1)
	}
}

// guardShardRows holds the current report's shards=1 sweep rows (the routed
// path with a nil ring, which must be bit-identical to the unsharded engine)
// against the baseline's YCSB-Load scaling rows at the same thread count: if
// routing one shard costs more than the threshold over the plain path, the
// "sharding is free when unused" contract is broken. Reports without a shard
// sweep pass vacuously — but a sweep whose rows ALL miss the baseline fails:
// skipping every row would let an empty or mismatched baseline (wrong file,
// sweep silently dropped from the frozen report) wave the gate through
// without checking anything. Returns true when a row regresses or no row
// could be anchored.
func guardShardRows(base, cur *harness.BenchReport, maxRegress float64) bool {
	baseByThreads := map[int]float64{}
	for _, r := range base.YCSBLoadScaling {
		if r.Engine == "clobber" {
			baseByThreads[r.Threads] = r.NSPerOp
		}
	}
	failed := false
	rows, anchored := 0, 0
	for _, s := range cur.ShardSweep {
		if s.Shards != 1 {
			continue
		}
		rows++
		b, ok := baseByThreads[s.Threads]
		if !ok {
			// Thread counts the frozen baseline never measured (reports now
			// sweep past 8 threads) have no anchor: skip rather than fail, so
			// extending a sweep does not retroactively break the gate.
			fmt.Printf("skip shards=1 t=%d: no baseline ycsb_load_scaling row\n", s.Threads)
			continue
		}
		anchored++
		ratio := s.NSPerOp/b - 1
		status := "ok  "
		if ratio > maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s shards=1 t=%d baseline %9.0f ns/op  current %9.0f ns/op  %+6.1f%% (limit +%.0f%%)\n",
			status, s.Threads, b, s.NSPerOp, 100*ratio, 100*maxRegress)
	}
	if rows > 0 && anchored == 0 {
		fmt.Printf("FAIL shard check: none of the %d shards=1 rows matched a baseline ycsb_load_scaling thread count (empty or mismatched baseline?)\n", rows)
		failed = true
	}
	return failed
}

// guardLineLogRows holds the current report's linelog_sweep rows to the PR 8
// contract. The sweep measures in precise (non-deferred-media) mode so its
// event counts are exact, which makes its ns/op incomparable to the fast-path
// YCSB rows — off-row timing is therefore held against the baseline's own
// linelog off-rows (same tolerance as the shard guard) when the baseline
// carries a sweep, i.e. CI guarding a fresh report against the frozen
// BENCH_PR8.json. In that case the single-thread off-row's deterministic
// persistence event profile (fences, flushes, whole-line stores per op) must
// also match the baseline exactly: the counts are pure logic, independent of
// machine and load, so any drift means the legacy writer's code path changed.
// On-rows must keep the write-combined win: strictly fewer flush+fence events
// per op than the off-row at the same thread count. Reports without a linelog
// sweep pass vacuously. Returns true when any row fails.
func guardLineLogRows(base, cur *harness.BenchReport, maxRegress float64) bool {
	baseOff := map[int]harness.LineLogPoint{}
	for _, r := range base.LineLogSweep {
		if !r.LineLog {
			baseOff[r.Threads] = r
		}
	}
	curOff := map[int]harness.LineLogPoint{}
	failed := false
	for _, r := range cur.LineLogSweep {
		if r.LineLog {
			continue
		}
		curOff[r.Threads] = r
		if b, ok := baseOff[r.Threads]; ok {
			ratio := r.NSPerOp/b.NSPerOp - 1
			status := "ok  "
			if ratio > maxRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s linelog=off t=%d baseline %9.0f ns/op  current %9.0f ns/op  %+6.1f%% (limit +%.0f%%)\n",
				status, r.Threads, b.NSPerOp, r.NSPerOp, 100*ratio, 100*maxRegress)
		}
		// The single-thread legacy event profile is deterministic: same
		// keys, same allocation order, same flush pattern. Exact identity
		// with the frozen baseline is the "off mode is bit-identical"
		// contract. Multi-thread rows wobble with interleaving, so only
		// t=1 is held to equality.
		if b, ok := baseOff[r.Threads]; ok && r.Threads == 1 {
			if r.FencesPerOp != b.FencesPerOp || r.FlushesPerOp != b.FlushesPerOp ||
				r.LineStoresPerOp != b.LineStoresPerOp {
				fmt.Printf("FAIL linelog=off t=1 event profile drifted: fences %v->%v flushes %v->%v line-stores %v->%v\n",
					b.FencesPerOp, r.FencesPerOp, b.FlushesPerOp, r.FlushesPerOp,
					b.LineStoresPerOp, r.LineStoresPerOp)
				failed = true
			} else {
				fmt.Printf("ok   linelog=off t=1 event profile identical to baseline (%.2f flushes/op, %.2f fences/op)\n",
					r.FlushesPerOp, r.FencesPerOp)
			}
		}
	}
	for _, r := range cur.LineLogSweep {
		if !r.LineLog {
			continue
		}
		off, ok := curOff[r.Threads]
		if !ok {
			fmt.Printf("FAIL linelog=on t=%d has no off-row to compare against\n", r.Threads)
			failed = true
			continue
		}
		onEvents := r.FencesPerOp + r.FlushesPerOp
		offEvents := off.FencesPerOp + off.FlushesPerOp
		status := "ok  "
		if onEvents >= offEvents {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s linelog=on  t=%d flush+fence/op %6.2f vs off %6.2f (must be strictly fewer)\n",
			status, r.Threads, onEvents, offEvents)
	}
	return failed
}

// guardLockfreeRows enforces the lock-free hashmap sweep's scaling contract
// (the BENCH_PR9.json gate). Two checks:
//
//  1. Monotonic scaling: within the current report, the lfhashmap rows'
//     throughput must be non-decreasing through 16 threads — each point at
//     least (1 - maxRegress) of the best preceding point, the tolerance
//     absorbing runner noise. This is the "lock contention ceiling is gone"
//     claim; the stripe-locked hashmap rows ride along as context and are
//     not gated (flattening is their expected behavior).
//  2. Single-thread anchor: the current lfhashmap t=1 ns/op is held against
//     the baseline's lfhashmap t=1 row when the baseline carries one
//     (multi-thread timing wobbles with runner load, so only t=1 anchors).
//
// Thread counts absent from the baseline are skipped, like the shard guard.
// A report selected for this check but missing the sweep fails outright: a
// silently dropped sweep must not pass. Returns true on any failure.
func guardLockfreeRows(base, cur *harness.BenchReport, maxRegress float64) bool {
	var rows []harness.LockFreePoint
	for _, r := range cur.LockfreeSweep {
		if r.Structure == "lfhashmap" {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		fmt.Println("FAIL lockfree check selected but current report has no lfhashmap lockfree_sweep rows")
		return true
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Threads < rows[j].Threads })
	failed := false
	best := 0.0
	for _, r := range rows {
		if r.Threads > 16 {
			fmt.Printf("ok   lockfree t=%-2d %12.0f ops/s (beyond the 16-thread gate, not held)\n",
				r.Threads, r.OpsPerSec)
			continue
		}
		status := "ok  "
		if r.OpsPerSec < best*(1-maxRegress) {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s lockfree t=%-2d %12.0f ops/s  best so far %12.0f (must keep >= %.0f%%)\n",
			status, r.Threads, r.OpsPerSec, best, 100*(1-maxRegress))
		if r.OpsPerSec > best {
			best = r.OpsPerSec
		}
	}
	var baseOne *harness.LockFreePoint
	for i, r := range base.LockfreeSweep {
		if r.Structure == "lfhashmap" && r.Threads == 1 {
			baseOne = &base.LockfreeSweep[i]
			break
		}
	}
	if baseOne != nil && rows[0].Threads == 1 {
		ratio := rows[0].NSPerOp/baseOne.NSPerOp - 1
		status := "ok  "
		if ratio > maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s lockfree t=1 baseline %9.0f ns/op  current %9.0f ns/op  %+6.1f%% (limit +%.0f%%)\n",
			status, baseOne.NSPerOp, rows[0].NSPerOp, 100*ratio, 100*maxRegress)
	}
	return failed
}

// guardSLORows enforces the serving tail-latency contract on the report's
// slo_sweep (the BENCH_PR10.json gate). The sweep is self-anchoring — off
// and on rows at the same offered rate inside ONE report — so no baseline
// is consulted; CI runs this check against the frozen report itself, which
// keeps the recorded front-cache win from silently rotting into a tie when
// the sweep is regenerated. Checks:
//
//  1. Validity: the sweep exists, every offered rate has both a front-off
//     and a front-on row (extra repetitions pair index-wise), and no row
//     recorded transport errors or an empty run.
//  2. Path evidence: front-off rows must show zero front-cache traffic —
//     the volatile read cache is structurally absent, so the off serving
//     path is the same persistent path the pre-front reports measured —
//     and front-on rows must show hits (a hot zipfian head that never
//     hits the front means the cache or the workload is miswired).
//  3. Tail latency: within each pair, the on row's p99 must not exceed the
//     off row's, and its achieved throughput must stay within the regress
//     tolerance of the off row's.
//  4. Speedup: at least one pair must show a strict front-cache win — the
//     recorded evidence that the hot-key front buys serving performance,
//     not just a counter that increments. The win takes either form the
//     load regime allows: below saturation achieved throughput is pinned
//     to the offered schedule on both sides, so the win is p99 strictly
//     lower (at throughput held within tolerance); at saturation the queue
//     pins p99 at its ceiling on both sides, so the win is achieved
//     throughput strictly higher (at p99 no worse). Demanding both
//     strictly in one pair would gate on measurement noise.
//
// Returns true on any failure.
func guardSLORows(cur *harness.BenchReport, maxRegress float64) bool {
	if len(cur.SLOSweep) == 0 {
		fmt.Println("FAIL slo check selected but current report has no slo_sweep rows")
		return true
	}
	failed := false
	offRows := map[float64][]harness.SLOPoint{}
	onRows := map[float64][]harness.SLOPoint{}
	var rates []float64
	for _, p := range cur.SLOSweep {
		if p.Errors > 0 || p.Completed == 0 {
			fmt.Printf("FAIL slo front=%v rate=%.0f: errors=%d completed=%d (measurement invalid)\n",
				p.FrontCache, p.OfferedOpsPerSec, p.Errors, p.Completed)
			failed = true
		}
		if p.FrontCache {
			if p.FrontHits == 0 {
				fmt.Printf("FAIL slo front=on rate=%.0f: zero front-cache hits (hot head never reached the front)\n",
					p.OfferedOpsPerSec)
				failed = true
			}
			onRows[p.OfferedOpsPerSec] = append(onRows[p.OfferedOpsPerSec], p)
		} else {
			if p.FrontHits != 0 || p.FrontMisses != 0 {
				fmt.Printf("FAIL slo front=off rate=%.0f: front-cache counters moved (hits=%d misses=%d) on the supposedly identical persistent path\n",
					p.OfferedOpsPerSec, p.FrontHits, p.FrontMisses)
				failed = true
			}
			if _, seen := offRows[p.OfferedOpsPerSec]; !seen {
				rates = append(rates, p.OfferedOpsPerSec)
			}
			offRows[p.OfferedOpsPerSec] = append(offRows[p.OfferedOpsPerSec], p)
		}
	}
	sort.Float64s(rates)
	strictWin := false
	pairs := 0
	for _, rate := range rates {
		offs, ons := offRows[rate], onRows[rate]
		if len(offs) != len(ons) {
			fmt.Printf("FAIL slo rate=%.0f: %d off rows vs %d on rows (unpaired sweep)\n", rate, len(offs), len(ons))
			failed = true
		}
		for i := 0; i < len(offs) && i < len(ons); i++ {
			off, on := offs[i], ons[i]
			pairs++
			status := "ok  "
			if on.P99NS > off.P99NS || on.AchievedOpsPerSec < off.AchievedOpsPerSec*(1-maxRegress) {
				status = "FAIL"
				failed = true
			}
			tailWin := on.P99NS < off.P99NS && on.AchievedOpsPerSec >= off.AchievedOpsPerSec*(1-maxRegress)
			tputWin := on.AchievedOpsPerSec > off.AchievedOpsPerSec && on.P99NS <= off.P99NS
			if tailWin || tputWin {
				strictWin = true
			}
			fmt.Printf("%s slo rate=%.0f p99 on %9d ns vs off %9d ns  achieved on %8.0f vs off %8.0f ops/s\n",
				status, rate, on.P99NS, off.P99NS, on.AchievedOpsPerSec, off.AchievedOpsPerSec)
		}
	}
	for rate, ons := range onRows {
		if _, ok := offRows[rate]; !ok {
			fmt.Printf("FAIL slo rate=%.0f: on rows with no off row to compare against\n", rate)
			failed = true
			_ = ons
		}
	}
	if pairs == 0 {
		fmt.Println("FAIL slo check: no off/on pair shares an offered rate (nothing compared)")
		return true
	}
	if !strictWin {
		fmt.Println("FAIL slo check: no offered rate shows a strict front-cache win (p99 strictly lower at held throughput, or throughput strictly higher at no-worse p99)")
		failed = true
	}
	return failed
}

func readReport(path string) (*harness.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// singleThreadNS maps structure -> ns/op for the engine's 1-thread Fig. 6
// insert rows.
func singleThreadNS(rep *harness.BenchReport, engine string) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rep.Fig6Insert {
		if r.Engine == engine && r.Threads == 1 {
			out[r.Structure] = r.NSPerOp
		}
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
