// Command benchguard compares two benchfigs -json reports and fails when the
// current report regresses the clobber engine's single-thread Fig. 6 insert
// latency beyond a threshold — the tripwire CI runs against the frozen
// BENCH_PR2.json baseline so persistence-path slowdowns surface as a red
// build rather than a quiet drift.
//
//	benchguard -baseline BENCH_PR2.json -current bench-report.json
//	benchguard -baseline BENCH_PR2.json -current fresh.json -max-regress 0.10
//
// Only clobber single-thread rows are compared: multi-thread points wobble
// with runner load, and the comparison engines' numbers are reproduced
// relatives, not guarded absolutes. A structure present in the baseline but
// missing from the current report is an error (a silently dropped sweep must
// not pass the guard). Exit status: 0 when every structure is within the
// threshold, 1 on any regression or missing row, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"clobbernvm/internal/harness"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR2.json", "baseline report (the frozen reference)")
	currentPath := flag.String("current", "", "current report to check against the baseline")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated single-thread ns/op regression (0.20 = +20%)")
	engine := flag.String("engine", "clobber", "engine whose single-thread inserts are guarded")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	baseNS := singleThreadNS(base, *engine)
	curNS := singleThreadNS(cur, *engine)
	if len(baseNS) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: baseline %s has no single-thread %s rows\n", *baselinePath, *engine)
		os.Exit(2)
	}

	failed := false
	for _, st := range sortedKeys(baseNS) {
		b := baseNS[st]
		c, ok := curNS[st]
		if !ok {
			fmt.Printf("FAIL %-9s missing from current report\n", st)
			failed = true
			continue
		}
		ratio := c/b - 1
		status := "ok  "
		if ratio > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-9s baseline %9.0f ns/op  current %9.0f ns/op  %+6.1f%% (limit +%.0f%%)\n",
			status, st, b, c, 100*ratio, 100**maxRegress)
	}
	if guardShardRows(base, cur, *maxRegress) {
		failed = true
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: regression beyond threshold")
		os.Exit(1)
	}
}

// guardShardRows holds the current report's shards=1 sweep rows (the routed
// path with a nil ring, which must be bit-identical to the unsharded engine)
// against the baseline's YCSB-Load scaling rows at the same thread count: if
// routing one shard costs more than the threshold over the plain path, the
// "sharding is free when unused" contract is broken. Reports without a shard
// sweep pass vacuously. Returns true when a row regresses.
func guardShardRows(base, cur *harness.BenchReport, maxRegress float64) bool {
	baseByThreads := map[int]float64{}
	for _, r := range base.YCSBLoadScaling {
		if r.Engine == "clobber" {
			baseByThreads[r.Threads] = r.NSPerOp
		}
	}
	failed := false
	for _, s := range cur.ShardSweep {
		if s.Shards != 1 {
			continue
		}
		b, ok := baseByThreads[s.Threads]
		if !ok {
			fmt.Printf("FAIL shards=1 t=%d has no baseline ycsb_load_scaling row\n", s.Threads)
			failed = true
			continue
		}
		ratio := s.NSPerOp/b - 1
		status := "ok  "
		if ratio > maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s shards=1 t=%d baseline %9.0f ns/op  current %9.0f ns/op  %+6.1f%% (limit +%.0f%%)\n",
			status, s.Threads, b, s.NSPerOp, 100*ratio, 100*maxRegress)
	}
	return failed
}

func readReport(path string) (*harness.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// singleThreadNS maps structure -> ns/op for the engine's 1-thread Fig. 6
// insert rows.
func singleThreadNS(rep *harness.BenchReport, engine string) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rep.Fig6Insert {
		if r.Engine == engine && r.Threads == 1 {
			out[r.Structure] = r.NSPerOp
		}
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
