package main

import (
	"testing"

	"clobbernvm/internal/harness"
)

// shardReport builds a current report with shards=1 sweep rows at the given
// thread counts, all at 100 ns/op.
func shardReport(threads ...int) *harness.BenchReport {
	rep := &harness.BenchReport{}
	for _, t := range threads {
		rep.ShardSweep = append(rep.ShardSweep, harness.ShardSweepPoint{
			Shards: 1, Threads: t, NSPerOp: 100,
		})
	}
	return rep
}

func ycsbBaseline(threads ...int) *harness.BenchReport {
	rep := &harness.BenchReport{}
	for _, t := range threads {
		rep.YCSBLoadScaling = append(rep.YCSBLoadScaling, harness.ScalingResult{
			Engine: "clobber", Threads: t, NSPerOp: 100,
		})
	}
	return rep
}

// TestGuardShardRowsFailsWhenNothingAnchors pins the no-vacuous-pass rule: a
// present shard sweep whose rows all miss the baseline (empty baseline,
// wrong file, or a sweep dropped from the frozen report) must fail, not
// skip its way to green.
func TestGuardShardRowsFailsWhenNothingAnchors(t *testing.T) {
	if !guardShardRows(&harness.BenchReport{}, shardReport(1, 2, 4, 8), 0.20) {
		t.Fatal("shard gate passed with an empty baseline anchoring zero rows")
	}
	if !guardShardRows(ycsbBaseline(16, 32), shardReport(1, 2, 4, 8), 0.20) {
		t.Fatal("shard gate passed with a baseline matching zero thread counts")
	}
}

// TestGuardShardRowsSkipsOnlyUnanchoredRows keeps the PR 9 behaviour for
// extended sweeps: thread counts past the frozen baseline are skipped as
// long as at least one row anchors.
func TestGuardShardRowsSkipsOnlyUnanchoredRows(t *testing.T) {
	if guardShardRows(ycsbBaseline(1, 2, 4, 8), shardReport(1, 2, 4, 8, 16, 32), 0.20) {
		t.Fatal("shard gate failed a sweep whose extra thread counts should be skipped")
	}
}

// TestGuardShardRowsVacuousWithoutSweep: reports that never ran a shard
// sweep still pass the gate.
func TestGuardShardRowsVacuousWithoutSweep(t *testing.T) {
	if guardShardRows(ycsbBaseline(1), &harness.BenchReport{}, 0.20) {
		t.Fatal("shard gate failed a report without a shard sweep")
	}
}

// TestGuardShardRowsStillCatchesRegressions: anchored rows beyond the
// tolerance fail.
func TestGuardShardRowsStillCatchesRegressions(t *testing.T) {
	cur := shardReport(1)
	cur.ShardSweep[0].NSPerOp = 150 // +50% over the 100 ns/op baseline
	if !guardShardRows(ycsbBaseline(1), cur, 0.20) {
		t.Fatal("shard gate missed a +50% regression on an anchored row")
	}
}

// sloRow builds one well-formed sweep row. On rows carry front hits; off
// rows carry none, as the gate requires.
func sloRow(front bool, rate, achieved float64, p99 int64) harness.SLOPoint {
	p := harness.SLOPoint{
		FrontCache:        front,
		OfferedOpsPerSec:  rate,
		AchievedOpsPerSec: achieved,
		P99NS:             p99,
		Completed:         1000,
	}
	if front {
		p.FrontHits, p.FrontMisses = 500, 100
	}
	return p
}

// sloReport wraps rows into a report.
func sloReport(rows ...harness.SLOPoint) *harness.BenchReport {
	return &harness.BenchReport{SLOSweep: rows}
}

// TestGuardSLOPassesOnStrictWin: an unsaturated tie plus a pair where the
// on row strictly wins the tail is the canonical healthy sweep.
func TestGuardSLOPassesOnStrictWin(t *testing.T) {
	rep := sloReport(
		sloRow(false, 1000, 990, 3_000_000),
		sloRow(true, 1000, 991, 3_000_000),
		sloRow(false, 8000, 5000, 100_000_000),
		sloRow(true, 8000, 7000, 12_000_000),
	)
	if guardSLORows(rep, 0.20) {
		t.Fatal("slo gate failed a sweep with a strict saturated win")
	}
}

// TestGuardSLOFailsWithoutSweep: selecting the check with no sweep rows must
// fail, not pass vacuously.
func TestGuardSLOFailsWithoutSweep(t *testing.T) {
	if !guardSLORows(&harness.BenchReport{}, 0.20) {
		t.Fatal("slo gate passed a report without a sweep")
	}
}

// TestGuardSLOPassesOnTailOnlyWin: at an offered rate both sides sustain,
// achieved throughput is pinned to the schedule — the strict win is carried
// by p99 alone, with throughput merely held within the tolerance band.
func TestGuardSLOPassesOnTailOnlyWin(t *testing.T) {
	rep := sloReport(
		sloRow(false, 8000, 7990, 25_000_000),
		sloRow(true, 8000, 7985, 12_000_000), // tail halved, throughput a hair lower
	)
	if guardSLORows(rep, 0.20) {
		t.Fatal("slo gate failed a pair whose on row strictly wins p99 at held throughput")
	}
}

// TestGuardSLOPassesOnThroughputOnlyWin: at saturation the queue pins p99
// at its ceiling on both sides — the strict win is carried by achieved
// throughput alone, with p99 merely no worse.
func TestGuardSLOPassesOnThroughputOnlyWin(t *testing.T) {
	rep := sloReport(
		sloRow(false, 240000, 175000, 100_000_000),
		sloRow(true, 240000, 194000, 100_000_000), // p99 tied at the ceiling
	)
	if guardSLORows(rep, 0.20) {
		t.Fatal("slo gate failed a saturated pair whose on row strictly wins throughput at tied p99")
	}
}

// TestGuardSLOFailsOnAllTies: rows that never show a strict win in either
// form mean the front cache buys nothing — the gate must say so.
func TestGuardSLOFailsOnAllTies(t *testing.T) {
	rep := sloReport(
		sloRow(false, 1000, 990, 3_000_000),
		sloRow(true, 1000, 990, 3_000_000),
	)
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed a sweep where on never strictly beats off")
	}
}

// TestGuardSLOFailsOnTailRegression: an on row with worse p99 than its off
// pair fails even when another pair carries the strict win.
func TestGuardSLOFailsOnTailRegression(t *testing.T) {
	rep := sloReport(
		sloRow(false, 1000, 990, 3_000_000),
		sloRow(true, 1000, 991, 6_000_000), // p99 worse with the cache on
		sloRow(false, 8000, 5000, 100_000_000),
		sloRow(true, 8000, 7000, 12_000_000),
	)
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed an on row whose p99 regressed vs its off pair")
	}
}

// TestGuardSLOFailsOnThroughputCollapse: on throughput below the tolerance
// band of its off pair fails.
func TestGuardSLOFailsOnThroughputCollapse(t *testing.T) {
	rep := sloReport(
		sloRow(false, 8000, 5000, 100_000_000),
		sloRow(true, 8000, 3000, 12_000_000), // -40% throughput
	)
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed an on row whose throughput collapsed vs its off pair")
	}
}

// TestGuardSLOFailsOnFrontTrafficInOffRows: the off rows are the evidence
// that the persistent path is structurally unchanged; any front counter
// movement there is a wiring bug.
func TestGuardSLOFailsOnFrontTrafficInOffRows(t *testing.T) {
	off := sloRow(false, 8000, 5000, 100_000_000)
	off.FrontHits = 7
	rep := sloReport(off, sloRow(true, 8000, 7000, 12_000_000))
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed an off row with front-cache traffic")
	}
}

// TestGuardSLOFailsOnColdFront: an on row with zero hits under a zipfian
// read-heavy mix means the front cache is miswired.
func TestGuardSLOFailsOnColdFront(t *testing.T) {
	on := sloRow(true, 8000, 7000, 12_000_000)
	on.FrontHits = 0
	rep := sloReport(sloRow(false, 8000, 5000, 100_000_000), on)
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed an on row that never hit the front cache")
	}
}

// TestGuardSLOFailsOnUnpairedRates: every rate needs both sides.
func TestGuardSLOFailsOnUnpairedRates(t *testing.T) {
	rep := sloReport(
		sloRow(false, 8000, 5000, 100_000_000),
		sloRow(true, 9000, 7000, 12_000_000),
	)
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed a sweep whose off and on rows share no rate")
	}
}

// TestGuardSLOFailsOnTransportErrors: rows with errors are not measurements.
func TestGuardSLOFailsOnTransportErrors(t *testing.T) {
	off := sloRow(false, 8000, 5000, 100_000_000)
	off.Errors = 3
	rep := sloReport(off, sloRow(true, 8000, 7000, 12_000_000))
	if !guardSLORows(rep, 0.20) {
		t.Fatal("slo gate passed a row with transport errors")
	}
}
