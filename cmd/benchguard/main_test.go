package main

import (
	"testing"

	"clobbernvm/internal/harness"
)

// shardReport builds a current report with shards=1 sweep rows at the given
// thread counts, all at 100 ns/op.
func shardReport(threads ...int) *harness.BenchReport {
	rep := &harness.BenchReport{}
	for _, t := range threads {
		rep.ShardSweep = append(rep.ShardSweep, harness.ShardSweepPoint{
			Shards: 1, Threads: t, NSPerOp: 100,
		})
	}
	return rep
}

func ycsbBaseline(threads ...int) *harness.BenchReport {
	rep := &harness.BenchReport{}
	for _, t := range threads {
		rep.YCSBLoadScaling = append(rep.YCSBLoadScaling, harness.ScalingResult{
			Engine: "clobber", Threads: t, NSPerOp: 100,
		})
	}
	return rep
}

// TestGuardShardRowsFailsWhenNothingAnchors pins the no-vacuous-pass rule: a
// present shard sweep whose rows all miss the baseline (empty baseline,
// wrong file, or a sweep dropped from the frozen report) must fail, not
// skip its way to green.
func TestGuardShardRowsFailsWhenNothingAnchors(t *testing.T) {
	if !guardShardRows(&harness.BenchReport{}, shardReport(1, 2, 4, 8), 0.20) {
		t.Fatal("shard gate passed with an empty baseline anchoring zero rows")
	}
	if !guardShardRows(ycsbBaseline(16, 32), shardReport(1, 2, 4, 8), 0.20) {
		t.Fatal("shard gate passed with a baseline matching zero thread counts")
	}
}

// TestGuardShardRowsSkipsOnlyUnanchoredRows keeps the PR 9 behaviour for
// extended sweeps: thread counts past the frozen baseline are skipped as
// long as at least one row anchors.
func TestGuardShardRowsSkipsOnlyUnanchoredRows(t *testing.T) {
	if guardShardRows(ycsbBaseline(1, 2, 4, 8), shardReport(1, 2, 4, 8, 16, 32), 0.20) {
		t.Fatal("shard gate failed a sweep whose extra thread counts should be skipped")
	}
}

// TestGuardShardRowsVacuousWithoutSweep: reports that never ran a shard
// sweep still pass the gate.
func TestGuardShardRowsVacuousWithoutSweep(t *testing.T) {
	if guardShardRows(ycsbBaseline(1), &harness.BenchReport{}, 0.20) {
		t.Fatal("shard gate failed a report without a shard sweep")
	}
}

// TestGuardShardRowsStillCatchesRegressions: anchored rows beyond the
// tolerance fail.
func TestGuardShardRowsStillCatchesRegressions(t *testing.T) {
	cur := shardReport(1)
	cur.ShardSweep[0].NSPerOp = 150 // +50% over the 100 ns/op baseline
	if !guardShardRows(ycsbBaseline(1), cur, 0.20) {
		t.Fatal("shard gate missed a +50% regression on an anchored row")
	}
}
