// Command torture drives the crash-consistency fault injector from the
// command line in two modes:
//
//   - sweep: exhaustive persist-point fault injection (internal/crashsweep) —
//     run the workload once to count persist points, then crash at every
//     single one, recover, and audit all-or-nothing against a model;
//   - random: randomized long-haul stress — random operation streams with a
//     crash at a random persist point each round, recovery, and a full-model
//     audit, for adversarial mileage beyond the deterministic sweep;
//   - prop: property-based differential torture (internal/proptest) — seeded
//     randomized op sequences checked against a reference model through
//     crash-recover cycles at sampled persist points; failures are shrunk by
//     delta debugging to a smallest reproducer and printed as a one-line
//     replay command;
//   - chaos (-chaos): online crash/recover torture (internal/chaos) — a live
//     memcached server under concurrent client fire, crashed at seeded random
//     persist points and recovered in place by the supervisor while the
//     durability-at-ack invariant is audited every round.
//
// Every failure prints the exact command that reproduces it. -replay takes
// the spec line a prop failure printed and re-runs exactly that scenario.
//
// Exit status is non-zero on any consistency mismatch.
//
//	torture -mode sweep -engine clobber -structure rbtree -crash-at any
//	torture -mode random -engine pmdk -structure hashmap -rounds 200 -evict torn
//	torture -mode prop -engine pmdk -structure rbtree -seqs 50 -samples 3
//	torture -chaos -engine clobber -clients 8 -rounds 20 -seed 1
//	torture -replay "engine=pmdk structure=rbtree seed=7 ops=30 crash-at=any evict=all point=67 threads=1 keep=28"
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"clobbernvm/internal/chaos"
	"clobbernvm/internal/crashsweep"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/proptest"
	"clobbernvm/internal/txn"
)

const rootSlot = 16

func main() {
	mode := flag.String("mode", "random", "mode: sweep (exhaustive persist-point injection), random, or prop (property-based differential torture)")
	engine := flag.String("engine", "clobber", "engine: clobber, pmdk, mnemosyne, atlas, ido, justdo")
	structure := flag.String("structure", "rbtree", "structure: hashmap, skiplist, rbtree, bptree, avltree, list, lfhashmap (clobber-family)")
	crashAt := flag.String("crash-at", "any", "persist-point class to crash at: store, flush, fence, any")
	evict := flag.String("evict", "random", "cache eviction adversary at crash: random, none, all, torn")
	rounds := flag.Int("rounds", 100, "random mode: crash/recover rounds")
	opsPerRound := flag.Int("ops", 50, "random/prop mode: operations per round/sequence")
	liveOps := flag.Int("live-ops", 3, "sweep mode: operations in the swept window")
	seed := flag.Int64("seed", 1, "RNG seed")
	seqs := flag.Int("seqs", 30, "prop mode: generated sequences")
	samples := flag.Int("samples", 3, "prop mode: crash points sampled per sequence")
	threads := flag.Int("threads", 1, "prop mode: concurrent worker streams (>1 enables concurrent-history checking)")
	groupCommit := flag.Bool("group-commit", false, "enable epoch-based group commit on the torture pool (crashes can land inside shared commit epochs)")
	chaosMode := flag.Bool("chaos", false, "online chaos mode: live server, concurrent clients, crash/recover under traffic with a durability-at-ack audit (overrides -mode)")
	clients := flag.Int("clients", 8, "chaos mode: concurrent clients")
	keys := flag.Int("keys", 48, "chaos mode: keys per client")
	shards := flag.Int("shards", 1, "independent persistence domains; >1 shards the backend (chaos: one victim shard crashes per round while the rest must keep serving; sweep: every persist point of one shard crashed while survivors are audited)")
	chaosBroken := flag.Bool("chaos-broken", false, "chaos mode: deliberately skip engine recovery — the harness self-test; the run MUST be convicted")
	frontCache := flag.Bool("front-cache", false, "chaos mode: serve reads through the volatile DRAM hot-key front cache; the audit additionally convicts any read older than the client's last ack")
	chaosFrontStale := flag.Bool("chaos-front-stale", false, "chaos mode: front cache with invalidation deliberately disabled — the coherence self-test; the run MUST be convicted")
	writeLanes := flag.Int("write-lanes", 0, "chaos mode: split each cache into that many independently locked persistent write lanes (0/1 = classic layout)")
	replay := flag.String("replay", "", "replay a proptest spec line exactly (overrides -mode)")
	flag.Parse()

	if *replay != "" {
		runReplay(*replay)
		return
	}

	kind, err := nvm.ParseCrashKind(*crashAt)
	check(err)
	policy, err := nvm.ParseEvictPolicy(*evict)
	check(err)

	if *chaosMode {
		runChaos(chaos.Spec{
			Engine: *engine, Clients: *clients, Rounds: *rounds,
			KeysPerClient: *keys, Seed: *seed,
			Kind: kind, Policy: policy, Broken: *chaosBroken,
			Shards:     *shards,
			FrontCache: *frontCache, FrontStale: *chaosFrontStale,
			Lanes: *writeLanes,
		})
		return
	}

	switch *mode {
	case "sweep":
		runSweep(*engine, *structure, kind, policy, *seed, *liveOps, *groupCommit, *shards)
	case "random":
		runRandom(*engine, *structure, kind, policy, *seed, *rounds, *opsPerRound, *groupCommit)
	case "prop":
		runProp(*engine, *structure, kind, policy, *seed, *seqs, *opsPerRound, *samples, *threads, *groupCommit)
	default:
		check(fmt.Errorf("unknown mode %q (want sweep|random|prop)", *mode))
	}
}

// runReplay re-runs exactly the scenario a torture failure printed.
func runReplay(line string) {
	spec, err := proptest.Parse(line)
	check(err)
	f, err := proptest.Run(spec)
	check(err)
	if f != nil {
		fmt.Fprintf(os.Stderr, "torture replay: FAIL: %s\n", f.Error())
		os.Exit(1)
	}
	fmt.Printf("torture replay: ok: %s\n", spec)
}

// runProp generates seeded op sequences, tortures each at sampled crash
// points, and shrinks the first failure to a smallest reproducer.
func runProp(engine, structure string, kind nvm.CrashKind, policy nvm.EvictPolicy,
	seed int64, seqs, ops, samples, threads int, groupCommit bool) {
	for s := 0; s < seqs; s++ {
		spec := proptest.Spec{
			Engine: engine, Structure: structure,
			Seed: seed + int64(s), Ops: ops,
			Kind: kind, Policy: policy, Threads: threads,
			GroupCommit: groupCommit,
		}
		f, err := proptest.TortureNamed(spec, samples)
		check(err)
		if f == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "torture prop: FAIL: %s\n", f.Error())
		if threads <= 1 {
			min, evals, err := proptest.ShrinkNamed(*f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "torture prop: shrink: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "torture prop: shrunk to %d op(s) in %d evaluations\n",
					len(min.Spec.Keep), evals)
				fmt.Fprintf(os.Stderr, "torture prop: minimal: %s\n", min.Error())
			}
		}
		os.Exit(1)
	}
	fmt.Printf("torture prop: %s/%s survived %d sequences x %d sampled crash points (ops=%d threads=%d crash-at=%s evict=%s seed=%d gc=%v)\n",
		engine, structure, seqs, samples, ops, threads, kind, policy, seed, groupCommit)
}

// runChaos drives the online chaos schedule. Unlike sweep/random/prop, the
// broken self-test variant inverts the exit logic: a broken engine that
// escapes conviction is the failure.
func runChaos(spec chaos.Spec) {
	res, err := chaos.Run(spec, func(format string, a ...any) {
		fmt.Printf(format+"\n", a...)
	})
	if res == nil {
		check(err)
		return
	}
	if spec.Broken || spec.FrontStale {
		adversary := "broken engine"
		if spec.FrontStale {
			adversary = "non-invalidating front cache"
		}
		convicted := len(res.Violations) > 0 || err != nil
		if !convicted {
			fmt.Fprintf(os.Stderr, "torture chaos: %s escaped conviction after %d rounds\n", adversary, res.Rounds)
			fmt.Fprintf(os.Stderr, "torture chaos: reproduce: %s\n", res.Reproduce())
			os.Exit(1)
		}
		fmt.Printf("torture chaos: %s convicted after %d rounds (%d violations, err=%v)\n",
			adversary, res.Rounds, len(res.Violations), err)
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture chaos: %v\n", err)
		fmt.Fprintf(os.Stderr, "torture chaos: reproduce: %s\n", res.Reproduce())
		os.Exit(1)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(os.Stderr, "torture chaos: VIOLATION %s\n", v)
	}
	if len(res.Violations) > 0 || res.LeakedGoroutines > 0 {
		fmt.Fprintf(os.Stderr, "torture chaos: %d violation(s), %d leaked goroutine(s)\n",
			len(res.Violations), res.LeakedGoroutines)
		fmt.Fprintf(os.Stderr, "torture chaos: reproduce: %s\n", res.Reproduce())
		os.Exit(1)
	}
	fmt.Printf("torture chaos: %s survived %d crash/recover rounds with %d clients (acked=%d unacked=%d rejected=%d; recovered=%d reexec=%d rolled-back=%d rolled-forward=%d) in %v\n",
		spec.Engine, res.Rounds, spec.Clients,
		res.OpsAcked, res.OpsUnacked, res.OpsRejected,
		res.Recovered, res.Reexecuted, res.RolledBack, res.RolledForward, res.Elapsed)
}

// reproduceCmd is the exact command line that re-runs the current scenario;
// sweep and random set it on entry so every failure path can print it.
var reproduceCmd string

// runSweep crashes at every persist point of a deterministic workload; with
// shards > 1 the points swept belong to one victim shard behind the router
// and the audit additionally enforces survivor isolation.
func runSweep(engine, structure string, kind nvm.CrashKind, policy nvm.EvictPolicy, seed int64, liveOps int, groupCommit bool, shards int) {
	reproduceCmd = fmt.Sprintf("go run ./cmd/torture -mode sweep -engine %s -structure %s -crash-at %s -evict %s -seed %d -live-ops %d",
		engine, structure, kind, policy, seed, liveOps)
	if groupCommit {
		reproduceCmd += " -group-commit"
	}
	if shards > 1 {
		reproduceCmd += fmt.Sprintf(" -shards %d", shards)
	}
	res, err := crashsweep.RunSharded(crashsweep.Config{
		Engine:      engine,
		Structure:   structure,
		Kind:        kind,
		Policy:      policy,
		Seed:        seed,
		LiveOps:     liveOps,
		GroupCommit: groupCommit,
	}, shards)
	check(err)
	where := ""
	if res.Shards > 1 {
		where = fmt.Sprintf(" shards=%d victim=%d", res.Shards, res.Victim)
	}
	fmt.Printf("torture sweep: %s/%s crash-at=%s evict=%s%s: %d persist points, %d crashes, %d recovered (%d re-executed, %d rolled back, %d rolled forward), %d quarantined\n",
		res.Engine, res.Structure, res.Kind, res.Policy, where, res.PersistPoints, res.Crashes,
		res.Recovered, res.Reexecuted, res.RolledBack, res.RolledForward, res.Quarantined)
	if !res.Ok() {
		for _, m := range res.Mismatches {
			fmt.Fprintf(os.Stderr, "torture sweep: MISMATCH %v\n", m)
		}
		fmt.Fprintf(os.Stderr, "torture sweep: reproduce: %s\n", reproduceCmd)
		os.Exit(1)
	}
}

// runRandom is the randomized long-haul stress loop.
func runRandom(engine, structure string, kind nvm.CrashKind, policy nvm.EvictPolicy, seed int64, rounds, opsPerRound int, groupCommit bool) {
	reproduceCmd = fmt.Sprintf("go run ./cmd/torture -mode random -engine %s -structure %s -crash-at %s -evict %s -seed %d -rounds %d -ops %d",
		engine, structure, kind, policy, seed, rounds, opsPerRound)
	if groupCommit {
		reproduceCmd += " -group-commit"
	}
	spec, err := crashsweep.EngineByName(engine)
	check(err)

	rng := rand.New(rand.NewSource(seed))
	crashes, recoveries, quarantines, completions := 0, 0, 0, 0

	pool := nvm.New(1<<27, nvm.WithEvictProbability(0.5), nvm.WithSeed(seed), nvm.WithEviction(policy))
	if groupCommit {
		pool.GroupCommit(nvm.DefaultGroupCommitWaiters, nvm.DefaultGroupCommitDelayNS)
	}
	alloc, err := pmem.Create(pool)
	check(err)
	eng, err := spec.Create(pool, alloc)
	check(err)
	store, err := crashsweep.OpenStructure(structure, eng, rootSlot)
	check(err)
	meter := spec.Style == crashsweep.StyleMeter

	model := map[string][]byte{}
	key := func() []byte { return []byte(fmt.Sprintf("key-%05d", rng.Intn(300))) }

	for round := 0; round < rounds; round++ {
		// A burst of committed operations, mirrored into the model.
		for i := 0; i < opsPerRound; i++ {
			k := key()
			if rng.Intn(4) == 0 {
				if _, err := store.Delete(0, k); err != nil {
					fatal(round, "delete", err)
				}
				delete(model, string(k))
			} else {
				v := []byte(fmt.Sprintf("val-%d-%d", round, i))
				if err := store.Insert(0, k, v); err != nil {
					fatal(round, "insert", err)
				}
				model[string(k)] = v
			}
		}

		// Crash during one more insert, at a random persist point of the
		// chosen class (ordinal ranges scaled to each class's density).
		crashKey := key()
		crashVal := []byte(fmt.Sprintf("crash-%d", round))
		pool.ScheduleCrashAt(kind, 1+int64(rng.Intn(pointRange(kind))))
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok || !errors.Is(err, nvm.ErrCrash) {
						panic(r)
					}
					fired = true
				}
			}()
			_ = store.Insert(0, crashKey, crashVal)
		}()
		pool.ScheduleCrashAt(kind, 0)
		if !fired {
			completions++
			model[string(crashKey)] = crashVal
			continue
		}
		crashes++

		if meter {
			// Meters are not failure-atomic; audit the simulator itself
			// (full eviction must reproduce the coherent state), then
			// resync the durable view and carry on.
			coh := pool.CoherentSnapshot()
			pool.SetEviction(nvm.EvictAll)
			pool.Crash()
			pool.SetEviction(policy)
			if !bytes.Equal(coh, pool.Snapshot()) {
				fatal(round, "audit", errors.New("full eviction did not reproduce coherent state"))
			}
			model[string(crashKey)] = crashVal
			continue
		}

		// Power loss; reopen everything.
		pool.Crash()
		alloc, err = pmem.Attach(pool)
		if err != nil {
			fatal(round, "attach allocator", err)
		}
		eng, err = spec.Attach(pool, alloc)
		if err != nil {
			fatal(round, "attach engine", err)
		}
		store, err = crashsweep.OpenStructure(structure, eng, rootSlot)
		if err != nil {
			fatal(round, "open structure", err)
		}
		var rep txn.RecoveryReport
		if rr, ok := eng.(txn.RecoveryReporter); ok {
			rep, err = rr.RecoverReport()
		} else {
			rep.Recovered, err = eng.Recover()
		}
		if err != nil {
			fatal(round, "recover", err)
		}
		recoveries += rep.Recovered
		quarantines += rep.Quarantined
		if rep.Quarantined > 0 {
			fatal(round, "recover", fmt.Errorf("pure power failure quarantined %d slot(s): %v",
				rep.Quarantined, errors.Join(rep.Errors...)))
		}

		// All-or-nothing audit for the crashed key.
		got, found, err := store.Get(0, crashKey)
		if err != nil {
			fatal(round, "get crash key", err)
		}
		prev, hadPrev := model[string(crashKey)]
		switch {
		case found && bytes.Equal(got, crashVal):
			model[string(crashKey)] = crashVal // completed (recovered or pre-crash)
		case found && hadPrev && bytes.Equal(got, prev):
			// rolled back / never happened: old value intact
		case !found && !hadPrev:
			// never happened, key was absent
		default:
			fatal(round, "audit", fmt.Errorf("torn state for %q: found=%v val=%q", crashKey, found, got))
		}

		// Every other committed key must be intact.
		for k, want := range model {
			if k == string(crashKey) {
				continue
			}
			got, found, err := store.Get(0, []byte(k))
			if err != nil || !found || !bytes.Equal(got, want) {
				fatal(round, "audit", fmt.Errorf("committed key %q lost or corrupt (found=%v err=%v)", k, found, err))
			}
		}
		fmt.Printf("torture: round %d: crash-at=%s point fired, %d recovered, %d keys intact\n",
			round, kind, rep.Recovered, len(model))
	}
	fmt.Printf("torture: %s/%s survived %d rounds (%d crashes, %d re-executions/rollbacks, %d quarantines, %d uninterrupted)\n",
		engine, structure, rounds, crashes, recoveries, quarantines, completions)
}

// pointRange bounds the random crash ordinal per persist-point class: one
// structure operation issues roughly this many events of each kind, so the
// crash usually lands inside the victim transaction.
func pointRange(kind nvm.CrashKind) int {
	switch kind {
	case nvm.CrashAtStore:
		return 150
	case nvm.CrashAtFlush:
		return 40
	case nvm.CrashAtFence:
		return 12
	default:
		return 200
	}
}

func fatal(round int, what string, err error) {
	fmt.Fprintf(os.Stderr, "torture: round %d: %s: %v\n", round, what, err)
	if reproduceCmd != "" {
		fmt.Fprintf(os.Stderr, "torture: reproduce: %s\n", reproduceCmd)
	}
	os.Exit(1)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "torture:", err)
		os.Exit(1)
	}
}
