// Command torture is a randomized crash-recovery stress tool: it runs
// random operation streams against a chosen structure and engine, injects a
// simulated power failure at a random store, recovers, audits the structure
// against a model, and repeats — reporting a summary at the end. It exists
// to give the failure-atomicity guarantees adversarial mileage beyond the
// deterministic unit-test sweeps.
//
//	torture -engine clobber -structure rbtree -rounds 200
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"clobbernvm/internal/atlas"
	"clobbernvm/internal/clobber"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/redolog"
	"clobbernvm/internal/undolog"
)

const rootSlot = 16

func main() {
	engine := flag.String("engine", "clobber", "engine: clobber, pmdk, mnemosyne, atlas")
	structure := flag.String("structure", "rbtree", "structure: hashmap, skiplist, rbtree, bptree, avltree, list")
	rounds := flag.Int("rounds", 100, "crash/recover rounds")
	opsPerRound := flag.Int("ops", 50, "operations between crashes")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	crashes, recoveries, completions := 0, 0, 0

	pool := nvm.New(1<<27, nvm.WithEvictProbability(0.5), nvm.WithSeed(*seed))
	alloc, err := pmem.Create(pool)
	check(err)
	eng, err := createEngine(*engine, pool, alloc)
	check(err)
	store, err := openStructure(*structure, eng)
	check(err)

	model := map[string][]byte{}
	key := func() []byte { return []byte(fmt.Sprintf("key-%05d", rng.Intn(300))) }

	for round := 0; round < *rounds; round++ {
		// A burst of committed operations, mirrored into the model.
		for i := 0; i < *opsPerRound; i++ {
			k := key()
			if rng.Intn(4) == 0 {
				if _, err := store.Delete(0, k); err != nil {
					fatal(round, "delete", err)
				}
				delete(model, string(k))
			} else {
				v := []byte(fmt.Sprintf("val-%d-%d", round, i))
				if err := store.Insert(0, k, v); err != nil {
					fatal(round, "insert", err)
				}
				model[string(k)] = v
			}
		}

		// Crash during one more insert.
		crashKey := key()
		crashVal := []byte(fmt.Sprintf("crash-%d", round))
		pool.ScheduleCrash(int64(1 + rng.Intn(150)))
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok || !errors.Is(err, nvm.ErrCrash) {
						panic(r)
					}
					fired = true
				}
			}()
			_ = store.Insert(0, crashKey, crashVal)
		}()
		pool.ScheduleCrash(0)
		if !fired {
			completions++
			model[string(crashKey)] = crashVal
			continue
		}
		crashes++

		// Power loss; reopen everything.
		pool.Crash()
		alloc, err = pmem.Attach(pool)
		if err != nil {
			fatal(round, "attach allocator", err)
		}
		eng, err = attachEngine(*engine, pool, alloc)
		if err != nil {
			fatal(round, "attach engine", err)
		}
		store, err = openStructure(*structure, eng)
		if err != nil {
			fatal(round, "open structure", err)
		}
		n, err := eng.Recover()
		if err != nil {
			fatal(round, "recover", err)
		}
		recoveries += n

		// All-or-nothing audit for the crashed key.
		got, found, err := store.Get(0, crashKey)
		if err != nil {
			fatal(round, "get crash key", err)
		}
		prev, hadPrev := model[string(crashKey)]
		switch {
		case found && bytes.Equal(got, crashVal):
			model[string(crashKey)] = crashVal // completed (recovered or pre-crash)
		case found && hadPrev && bytes.Equal(got, prev):
			// rolled back / never happened: old value intact
		case !found && !hadPrev:
			// never happened, key was absent
		default:
			fatal(round, "audit", fmt.Errorf("torn state for %q: found=%v val=%q", crashKey, found, got))
		}

		// Every other committed key must be intact.
		for k, want := range model {
			if k == string(crashKey) {
				continue
			}
			got, found, err := store.Get(0, []byte(k))
			if err != nil || !found || !bytes.Equal(got, want) {
				fatal(round, "audit", fmt.Errorf("committed key %q lost or corrupt (found=%v err=%v)", k, found, err))
			}
		}
	}
	fmt.Printf("torture: %s/%s survived %d rounds (%d crashes, %d re-executions/rollbacks, %d uninterrupted)\n",
		*engine, *structure, *rounds, crashes, recoveries, completions)
}

func createEngine(kind string, p *nvm.Pool, a *pmem.Allocator) (pds.Engine, error) {
	switch kind {
	case "clobber":
		return clobber.Create(p, a, clobber.Options{Slots: 4})
	case "pmdk":
		return undolog.Create(p, a, undolog.Options{Slots: 4})
	case "mnemosyne":
		return redolog.Create(p, a, redolog.Options{Slots: 4})
	case "atlas":
		return atlas.Create(p, a, atlas.Options{Slots: 4})
	}
	return nil, fmt.Errorf("unknown engine %q", kind)
}

func attachEngine(kind string, p *nvm.Pool, a *pmem.Allocator) (pds.Engine, error) {
	switch kind {
	case "clobber":
		return clobber.Attach(p, a, clobber.Options{})
	case "pmdk":
		return undolog.Attach(p, a, undolog.Options{})
	case "mnemosyne":
		return redolog.Attach(p, a, redolog.Options{})
	case "atlas":
		return atlas.Attach(p, a, atlas.Options{})
	}
	return nil, fmt.Errorf("unknown engine %q", kind)
}

func openStructure(kind string, eng pds.Engine) (pds.Store, error) {
	switch kind {
	case "hashmap":
		return pds.NewHashMap(eng, rootSlot)
	case "skiplist":
		return pds.NewSkipList(eng, rootSlot)
	case "rbtree":
		return pds.NewRBTree(eng, rootSlot)
	case "bptree":
		return pds.NewBPTree(eng, rootSlot)
	case "avltree":
		return pds.NewAVLTree(eng, rootSlot)
	case "list":
		return pds.NewList(eng, rootSlot)
	}
	return nil, fmt.Errorf("unknown structure %q", kind)
}

func fatal(round int, what string, err error) {
	fmt.Fprintf(os.Stderr, "torture: round %d: %s: %v\n", round, what, err)
	os.Exit(1)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "torture:", err)
		os.Exit(1)
	}
}
