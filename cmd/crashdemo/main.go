// Command crashdemo walks through Clobber-NVM's failure-atomicity story
// end to end: it runs list-insert transactions, kills one at a chosen store
// with the pool's crash injector, drops the simulated caches, saves the
// durable image to a file, reopens it as a fresh "process", and recovers by
// re-execution — printing the persistent state at every stage.
//
//	crashdemo -crash-at 9
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	clobbernvm "clobbernvm"
)

func main() {
	crashAt := flag.Int64("crash-at", 9, "store ordinal at which the simulated power failure hits")
	flag.Parse()

	dir, err := os.MkdirTemp("", "crashdemo")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	image := filepath.Join(dir, "pool.img")

	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 1 << 24})
	if err != nil {
		fatal(err)
	}
	head := db.Pool().RootSlot(2)
	push := func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		node, err := m.Alloc(16)
		if err != nil {
			return err
		}
		m.Store64(node, args.Uint64(0))
		m.Store64(node+8, m.Load64(head))
		m.Store64(head, node)
		return nil
	}
	db.Register("push", push)

	fmt.Println("== phase 1: commit three inserts ==")
	for i := uint64(1); i <= 3; i++ {
		if err := db.Run(0, "push", clobbernvm.NewArgs().PutUint64(i*100)); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("list: %v\n", list(db, head))

	fmt.Printf("\n== phase 2: power fails at store #%d of the next insert ==\n", *crashAt)
	db.Pool().ScheduleCrash(*crashAt)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, clobbernvm.ErrCrash) {
					fmt.Println("simulated power failure!")
					return
				}
				panic(r)
			}
		}()
		_ = db.Run(0, "push", clobbernvm.NewArgs().PutUint64(400))
	}()

	db.Pool().Crash() // unflushed cache lines are lost
	if err := db.SaveImage(image); err != nil {
		fatal(err)
	}
	fmt.Printf("durable image saved to %s\n", image)

	fmt.Println("\n== phase 3: restart, re-register, recover ==")
	db2, err := clobbernvm.Open(image, clobbernvm.Options{})
	if err != nil {
		fatal(err)
	}
	db2.Register("push", push)
	n, err := db2.Recover()
	if err != nil {
		fatal(err)
	}
	head2 := db2.Pool().RootSlot(2)
	fmt.Printf("recovered %d interrupted transaction(s) by re-execution\n", n)
	fmt.Printf("list: %v\n", list(db2, head2))

	fmt.Println("\n== phase 4: keep working ==")
	if err := db2.Run(0, "push", clobbernvm.NewArgs().PutUint64(500)); err != nil {
		fatal(err)
	}
	fmt.Printf("list: %v\n", list(db2, head2))
	s := db2.Stats()
	fmt.Printf("engine stats: committed=%d recovered=%d clobber entries=%d v_log entries=%d\n",
		s.Committed, s.Recovered, s.LogEntries, s.VLogEntries)
}

func list(db *clobbernvm.DB, head clobbernvm.Addr) []uint64 {
	var out []uint64
	_ = db.RunRO(0, func(m clobbernvm.Mem) error {
		for n := m.Load64(head); n != 0; n = m.Load64(n + 8) {
			out = append(out, m.Load64(n))
		}
		return nil
	})
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "crashdemo: %v\n", err)
	os.Exit(1)
}
