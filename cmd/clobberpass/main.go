// Command clobberpass runs the Clobber-NVM compiler passes (§4.4) over the
// transaction corpus and prints, per transaction, the candidate input reads,
// the conservative clobber-write candidates, what the dependency-analysis
// propagation removed (unexposed/shadowed), and the final instrumentation
// plan — the developer-visible output of "compiling with Clobber-NVM".
//
//	clobberpass              # analyze the whole corpus
//	clobberpass -tx skiplist_insert
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clobbernvm/internal/analysis"
)

func main() {
	tx := flag.String("tx", "", "analyze only the named transaction (substring match)")
	dump := flag.Bool("dump", false, "also print the transaction's IR")
	flag.Parse()

	matched := 0
	for _, f := range analysis.Corpus() {
		if *tx != "" && !strings.Contains(f.Name, *tx) {
			continue
		}
		matched++
		if err := f.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "clobberpass: %s: %v\n", f.Name, err)
			os.Exit(1)
		}
		if *dump {
			fmt.Print(f.Dump())
		}
		fmt.Print(analysis.Explain(f))
		fmt.Println()
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "clobberpass: no transaction matches %q\n", *tx)
		os.Exit(1)
	}
}
