// Command memcachedsim runs the persistent memcached-style server (§5.6)
// over a simulated NVM pool, speaking the memcached text protocol on TCP.
//
//	memcachedsim -addr 127.0.0.1:11211 -engine clobber -lock rwlock
//
// Try it with a TCP client:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
//
// With -selftest the binary instead drives the four §5.6 request mixes
// against the in-process engine and prints throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"clobbernvm/internal/harness"
	"clobbernvm/internal/memcache"
	"clobbernvm/internal/nvm"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	engine := flag.String("engine", "clobber", "engine: clobber, pmdk, mnemosyne, atlas")
	lock := flag.String("lock", "rwlock", "lock: mutex, spinlock, rwlock")
	capacity := flag.Uint64("capacity", 1<<18, "max items before LRU eviction")
	poolMB := flag.Uint64("pool-mb", 512, "simulated pool size in MiB")
	selftest := flag.Bool("selftest", false, "run the 5.6 workload mixes and exit")
	flag.Parse()

	sc := harness.SmallScale
	sc.PoolBytes = *poolMB << 20
	sc.Latency = nvm.DefaultLatency
	setup, err := harness.NewSetup(harness.EngineKind(*engine), sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}

	var lockMode memcache.LockMode
	switch *lock {
	case "mutex":
		lockMode = memcache.LockExclusive
	case "spinlock":
		lockMode = memcache.LockSpin
	case "rwlock":
		lockMode = memcache.LockRW
	default:
		fmt.Fprintf(os.Stderr, "memcachedsim: unknown lock %q\n", *lock)
		os.Exit(2)
	}

	cache, err := memcache.New(setup.Engine, 34, memcache.Options{
		Capacity: *capacity,
		Lock:     lockMode,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}

	if *selftest {
		for _, mix := range memcache.AllMixes {
			res, err := memcache.Drive(cache, memcache.DriverConfig{
				Mix: mix, Threads: 4, Ops: 20000, KeySpace: 10000, Seed: 1,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s %-8s %8.0f ops/s\n", mix.Name, *engine,
				float64(res.Ops)/res.Elapsed.Seconds())
		}
		return
	}

	srv, err := memcache.NewServer(cache, *addr, 8)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memcachedsim: engine=%s lock=%s listening on %s (ctrl-c to stop)\n",
		*engine, *lock, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = srv.Close()
	hits, misses := cache.Hits.Load(), cache.Misses.Load()
	fmt.Printf("memcachedsim: done (hits=%d misses=%d evictions=%d)\n",
		hits, misses, cache.Evictions.Load())
}
