// Command memcachedsim runs the persistent memcached-style server (§5.6)
// over a simulated NVM pool, speaking the memcached text protocol on TCP.
//
//	memcachedsim -addr 127.0.0.1:11211 -engine clobber -lock rwlock
//
// Try it with a TCP client:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
//
// The cache is wrapped in a crash-recovery supervisor: if the simulated
// pool's crash latch fires (e.g. armed via the /debug/crash endpoint), the
// server drains in-flight requests with "SERVER_ERROR recovering", rebuilds
// the world from the durable image, re-runs engine recovery, and resumes —
// connections stay up throughout. /debug/crash?at=<store|flush|fence|any>&
// point=<n> arms the next crash; "recovery" in /debug/vars reports restarts
// and the last recovery's outcome.
//
// A debug HTTP endpoint (-debug-addr) serves /debug/vars (JSON metrics:
// per-phase txn latency histograms, pool persist traffic, engine log
// counters, cache hit rates, recovery status), /debug/pprof/* and
// /debug/trace (the transaction lifecycle flight recorder). -trace writes
// every lifecycle event as JSONL to a file.
//
// With -selftest the binary instead drives the four §5.6 request mixes
// against the in-process engine and prints throughput.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"clobbernvm/internal/harness"
	"clobbernvm/internal/memcache"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/obs"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	engine := flag.String("engine", "clobber", "engine: clobber, pmdk, mnemosyne, atlas")
	lock := flag.String("lock", "rwlock", "lock: mutex, spinlock, rwlock")
	capacity := flag.Uint64("capacity", 1<<18, "max items before LRU eviction")
	poolMB := flag.Uint64("pool-mb", 512, "simulated pool size in MiB")
	selftest := flag.Bool("selftest", false, "run the 5.6 workload mixes and exit")
	debugAddr := flag.String("debug-addr", "127.0.0.1:0", "debug HTTP endpoint (vars/pprof/trace); empty disables")
	tracePath := flag.String("trace", "", "write txn lifecycle trace events as JSONL to this file")
	traceRing := flag.Int("trace-ring", 4096, "in-memory trace ring capacity served at /debug/trace (0 disables)")
	groupCommit := flag.Bool("group-commit", false, "enable epoch-based group commit: concurrent connections share commit fences")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "per-connection read/write deadline; 0 disables")
	drainTimeout := flag.Duration("drain-timeout", time.Second, "how long Close waits for in-flight sessions before force-closing")
	shards := flag.Int("shards", 1, "independent persistence domains behind a consistent-hash key router; each shard has its own pool, engine and crash-recovery supervisor")
	frontCache := flag.Bool("front-cache", false, "enable the volatile hot-key front cache: hot reads skip the txn layer; writes invalidate inline before the ack; recovery drops the front wholesale")
	frontEntries := flag.Int("front-entries", 0, "front cache capacity in entries (0 = default 4096)")
	writeLanes := flag.Int("write-lanes", 0, "partition each shard's keyspace into this many independent write lanes so concurrent writes commit in parallel (0 or 1 = single lane)")
	flag.Parse()

	const serverConns = 8
	sc := harness.SmallScale
	sc.PoolBytes = *poolMB << 20
	sc.Latency = nvm.DefaultLatency
	sc.GroupCommit = *groupCommit
	// The engine needs one worker slot per concurrent connection; SmallScale
	// is sized for two benchmark threads, not a server's session pool.
	sc.Threads = []int{serverConns}

	var lockMode memcache.LockMode
	switch *lock {
	case "mutex":
		lockMode = memcache.LockExclusive
	case "spinlock":
		lockMode = memcache.LockSpin
	case "rwlock":
		lockMode = memcache.LockRW
	default:
		fmt.Fprintf(os.Stderr, "memcachedsim: unknown lock %q\n", *lock)
		os.Exit(2)
	}

	const rootSlot = 34
	copts := memcache.Options{
		Capacity:          *capacity,
		Lock:              lockMode,
		WriteLanes:        *writeLanes,
		FrontCache:        *frontCache,
		FrontCacheEntries: *frontEntries,
	}

	// backend is what the protocol layer serves; sups are the per-shard
	// crash-recovery supervisors behind it (one entry when unsharded).
	var (
		backend memcache.Backend
		sups    []*memcache.Supervisor
		sharded *memcache.ShardedBackend
		cache   *memcache.Cache // selftest drives the cache directly (unsharded only)
	)
	if *shards <= 1 {
		setup, err := harness.NewSetup(harness.EngineKind(*engine), sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
			os.Exit(1)
		}
		cache, err = memcache.New(setup.Engine, rootSlot, copts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
			os.Exit(1)
		}
		// Crash-recovery supervision: on a pool crash latch, rebuild the world
		// from the durable image exactly the way this process builds it at boot
		// (same latency model, fast path, group commit), re-attach the engine,
		// and let the supervisor re-register txfuncs and run recovery.
		rebuild := func(img []byte) (*nvm.Pool, pds.Engine, error) {
			p, err := nvm.NewFromImage(img, nvm.WithLatency(sc.Latency))
			if err != nil {
				return nil, nil, err
			}
			p.Prefault()
			p.SetFastPath(true)
			if sc.GroupCommit {
				p.GroupCommit(nvm.DefaultGroupCommitWaiters, nvm.DefaultGroupCommitDelayNS)
			}
			a, err := pmem.Attach(p)
			if err != nil {
				return nil, nil, err
			}
			e, err := harness.AttachEngine(harness.EngineKind(*engine), p, a)
			if err != nil {
				return nil, nil, err
			}
			return p, e, nil
		}
		sup := memcache.NewSupervisor(cache, setup.Pool, rootSlot, copts, rebuild)
		sups = []*memcache.Supervisor{sup}
		backend = sup
	} else {
		// Sharded: N independent pools behind the router, one supervisor per
		// shard, so a crash drains and recovers only the shard that latched.
		sc.Shards = *shards
		shSetup, err := harness.NewShardedSetup(harness.EngineKind(*engine), sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
			os.Exit(1)
		}
		sups = make([]*memcache.Supervisor, shSetup.Set.N())
		for i := range sups {
			sh := shSetup.Set.Shard(i)
			shCache, err := memcache.New(sh.Engine, rootSlot, copts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memcachedsim: shard %d: %v\n", i, err)
				os.Exit(1)
			}
			rebuild := func(img []byte) (*nvm.Pool, pds.Engine, error) {
				s2, err := harness.RebuildShard(harness.EngineKind(*engine), img, sc)
				if err != nil {
					return nil, nil, err
				}
				return s2.Pool, s2.Engine, nil
			}
			sups[i] = memcache.NewSupervisor(shCache, sh.Pool, rootSlot, copts, rebuild)
		}
		sharded, err = memcache.NewShardedBackend(sups)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
			os.Exit(1)
		}
		backend = sharded
	}
	sup := sups[0]

	// Observability: metrics on, trace sinks per flags.
	obs.Enable(true)
	var ring *obs.RingSink
	if *traceRing > 0 {
		ring = obs.NewRingSink(*traceRing)
	}
	var traceFile *os.File
	var sinks []obs.Sink
	if ring != nil {
		sinks = append(sinks, ring)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		sinks = append(sinks, obs.NewJSONLSink(traceFile))
	}
	if s := obs.MultiSink(sinks...); s != nil {
		obs.SetSink(s)
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: debug listen: %v\n", err)
			os.Exit(1)
		}
		// Read pool/engine through the supervisor: recovery swaps in a
		// fresh incarnation, and the debug page must follow it. In a sharded
		// deployment shard 0 is the representative for pool/engine stats and
		// "recovery" carries every shard's supervisor status.
		recovery := func() any { return sup.Status() }
		if sharded != nil {
			recovery = func() any { return sharded.Statuses() }
		}
		mux := obs.DebugMux(map[string]func() any{
			"pool":        func() any { return sup.Pool().Stats() },
			"engine":      func() any { return sup.Engine().Stats().Snapshot() },
			"groupcommit": func() any { return sup.Pool().GroupCommitStats() },
			"recovery":    recovery,
			"cache": func() any {
				hits, misses, evictions := backend.Counters()
				return map[string]int64{
					"hits":      hits,
					"misses":    misses,
					"evictions": evictions,
				}
			},
			"frontcache": func() any { return backend.FrontStats() },
		}, ring)
		mux.HandleFunc("/debug/crash", func(w http.ResponseWriter, r *http.Request) {
			kind, err := nvm.ParseCrashKind(r.URL.Query().Get("at"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			point, err := strconv.ParseInt(r.URL.Query().Get("point"), 10, 64)
			if err != nil || point < 1 {
				http.Error(w, "point must be a positive integer", http.StatusBadRequest)
				return
			}
			// &shard=<i> picks the victim domain (default 0; only shard 0
			// exists unsharded).
			target := 0
			if q := r.URL.Query().Get("shard"); q != "" {
				target, err = strconv.Atoi(q)
				if err != nil || target < 0 || target >= len(sups) {
					http.Error(w, fmt.Sprintf("shard must be in [0,%d)", len(sups)), http.StatusBadRequest)
					return
				}
			}
			if err := sups[target].Arm(kind, point); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			fmt.Fprintf(w, "armed: crash on shard %d at %s persistence event #%d\n", target, kind, point)
		})
		go func() { _ = http.Serve(dln, mux) }()
		fmt.Printf("memcachedsim: debug endpoint on http://%s/debug/vars\n", dln.Addr())
	}

	if *selftest {
		if cache == nil {
			fmt.Fprintln(os.Stderr, "memcachedsim: -selftest drives a single cache; run it with -shards 1")
			os.Exit(2)
		}
		for _, mix := range memcache.AllMixes {
			res, err := memcache.Drive(cache, memcache.DriverConfig{
				Mix: mix, Threads: 4, Ops: 20000, KeySpace: 10000, Seed: 1,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s %-8s %8.0f ops/s\n", mix.Name, *engine,
				float64(res.Ops)/res.Elapsed.Seconds())
		}
		return
	}

	srv, err := memcache.NewServer(backend, *addr, serverConns,
		memcache.WithIdleTimeout(*idleTimeout),
		memcache.WithDrainTimeout(*drainTimeout))
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memcachedsim: engine=%s lock=%s shards=%d lanes=%d front-cache=%v listening on %s (ctrl-c or SIGTERM to stop)\n",
		*engine, *lock, len(sups), *writeLanes, *frontCache, srv.Addr())

	<-shutdownSignals()
	fmt.Println(shutdown(srv, backend, sups, traceFile))
}

// shutdownSignals delivers SIGINT and SIGTERM on the returned channel:
// ctrl-c at a terminal and an orchestrator's stop signal both get the same
// graceful drain instead of SIGTERM's default instant kill.
func shutdownSignals() chan os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return sig
}

// shutdown closes the server — stopping the acceptor and letting in-flight
// sessions drain their pipelined commands for the configured drain window —
// detaches the trace sink, and returns the final stats line.
func shutdown(srv *memcache.Server, backend memcache.Backend, sups []*memcache.Supervisor, traceFile *os.File) string {
	_ = srv.Close()
	if traceFile != nil {
		obs.SetSink(nil)
		_ = traceFile.Close()
	}
	hits, misses, evictions := backend.Counters()
	var restarts int64
	for _, s := range sups {
		restarts += s.Restarts()
	}
	return fmt.Sprintf("memcachedsim: done (hits=%d misses=%d evictions=%d restarts=%d)",
		hits, misses, evictions, restarts)
}
