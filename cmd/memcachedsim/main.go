// Command memcachedsim runs the persistent memcached-style server (§5.6)
// over a simulated NVM pool, speaking the memcached text protocol on TCP.
//
//	memcachedsim -addr 127.0.0.1:11211 -engine clobber -lock rwlock
//
// Try it with a TCP client:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
//
// A debug HTTP endpoint (-debug-addr) serves /debug/vars (JSON metrics:
// per-phase txn latency histograms, pool persist traffic, engine log
// counters, cache hit rates), /debug/pprof/* and /debug/trace (the
// transaction lifecycle flight recorder). -trace writes every lifecycle
// event as JSONL to a file.
//
// With -selftest the binary instead drives the four §5.6 request mixes
// against the in-process engine and prints throughput.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"clobbernvm/internal/harness"
	"clobbernvm/internal/memcache"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	engine := flag.String("engine", "clobber", "engine: clobber, pmdk, mnemosyne, atlas")
	lock := flag.String("lock", "rwlock", "lock: mutex, spinlock, rwlock")
	capacity := flag.Uint64("capacity", 1<<18, "max items before LRU eviction")
	poolMB := flag.Uint64("pool-mb", 512, "simulated pool size in MiB")
	selftest := flag.Bool("selftest", false, "run the 5.6 workload mixes and exit")
	debugAddr := flag.String("debug-addr", "127.0.0.1:0", "debug HTTP endpoint (vars/pprof/trace); empty disables")
	tracePath := flag.String("trace", "", "write txn lifecycle trace events as JSONL to this file")
	traceRing := flag.Int("trace-ring", 4096, "in-memory trace ring capacity served at /debug/trace (0 disables)")
	groupCommit := flag.Bool("group-commit", false, "enable epoch-based group commit: concurrent connections share commit fences")
	flag.Parse()

	sc := harness.SmallScale
	sc.PoolBytes = *poolMB << 20
	sc.Latency = nvm.DefaultLatency
	sc.GroupCommit = *groupCommit
	setup, err := harness.NewSetup(harness.EngineKind(*engine), sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}

	var lockMode memcache.LockMode
	switch *lock {
	case "mutex":
		lockMode = memcache.LockExclusive
	case "spinlock":
		lockMode = memcache.LockSpin
	case "rwlock":
		lockMode = memcache.LockRW
	default:
		fmt.Fprintf(os.Stderr, "memcachedsim: unknown lock %q\n", *lock)
		os.Exit(2)
	}

	cache, err := memcache.New(setup.Engine, 34, memcache.Options{
		Capacity: *capacity,
		Lock:     lockMode,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}

	// Observability: metrics on, trace sinks per flags.
	obs.Enable(true)
	var ring *obs.RingSink
	if *traceRing > 0 {
		ring = obs.NewRingSink(*traceRing)
	}
	var traceFile *os.File
	var sinks []obs.Sink
	if ring != nil {
		sinks = append(sinks, ring)
	}
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
			os.Exit(1)
		}
		sinks = append(sinks, obs.NewJSONLSink(traceFile))
	}
	if s := obs.MultiSink(sinks...); s != nil {
		obs.SetSink(s)
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcachedsim: debug listen: %v\n", err)
			os.Exit(1)
		}
		pool := setup.Engine.Pool()
		eng := setup.Engine
		mux := obs.DebugMux(map[string]func() any{
			"pool":        func() any { return pool.Stats() },
			"engine":      func() any { return eng.Stats().Snapshot() },
			"groupcommit": func() any { return pool.GroupCommitStats() },
			"cache": func() any {
				return map[string]int64{
					"hits":      cache.Hits.Load(),
					"misses":    cache.Misses.Load(),
					"evictions": cache.Evictions.Load(),
				}
			},
		}, ring)
		go func() { _ = http.Serve(dln, mux) }()
		fmt.Printf("memcachedsim: debug endpoint on http://%s/debug/vars\n", dln.Addr())
	}

	if *selftest {
		for _, mix := range memcache.AllMixes {
			res, err := memcache.Drive(cache, memcache.DriverConfig{
				Mix: mix, Threads: 4, Ops: 20000, KeySpace: 10000, Seed: 1,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s %-8s %8.0f ops/s\n", mix.Name, *engine,
				float64(res.Ops)/res.Elapsed.Seconds())
		}
		return
	}

	srv, err := memcache.NewServer(cache, *addr, 8)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcachedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memcachedsim: engine=%s lock=%s listening on %s (ctrl-c to stop)\n",
		*engine, *lock, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = srv.Close()
	if traceFile != nil {
		obs.SetSink(nil)
		_ = traceFile.Close()
	}
	hits, misses := cache.Hits.Load(), cache.Misses.Load()
	fmt.Printf("memcachedsim: done (hits=%d misses=%d evictions=%d)\n",
		hits, misses, cache.Evictions.Load())
}
