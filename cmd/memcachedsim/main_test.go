package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"clobbernvm/internal/harness"
	"clobbernvm/internal/memcache"
)

// TestShutdownSignalsDeliverSIGTERM pins the orchestrator contract: SIGTERM
// must reach the shutdown channel instead of killing the process outright,
// or a container stop would skip the graceful drain entirely.
func TestShutdownSignalsDeliverSIGTERM(t *testing.T) {
	sig := shutdownSignals()
	defer signal.Stop(sig)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-sig:
		if got != syscall.SIGTERM {
			t.Fatalf("received %v, want SIGTERM", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never delivered to the shutdown channel")
	}
}

// TestShutdownDrainsInFlight races shutdown against a client that has just
// pipelined a burst of sets: the drain window must let every command finish
// and its reply reach the wire before the connection dies.
func TestShutdownDrainsInFlight(t *testing.T) {
	sc := harness.SmallScale
	sc.PoolBytes = 1 << 26
	sc.Threads = []int{4}
	setup, err := harness.NewSetup(harness.EngineClobber, sc)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := memcache.New(setup.Engine, 34, memcache.Options{
		Capacity: 1 << 12, Lock: memcache.LockRW,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := memcache.NewServer(cache, "127.0.0.1:0", 4,
		memcache.WithIdleTimeout(30*time.Second),
		memcache.WithDrainTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const burst = 50
	var req strings.Builder
	for i := 0; i < burst; i++ {
		fmt.Fprintf(&req, "set k%03d 0 0 5\r\nhello\r\n", i)
	}
	req.WriteString("quit\r\n")
	if _, err := conn.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}

	done := make(chan string, 1)
	go func() { done <- shutdown(srv, cache, nil, nil) }()

	r := bufio.NewReader(conn)
	for i := 0; i < burst; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d/%d lost during shutdown: %v", i, burst, err)
		}
		if line != "STORED\r\n" {
			t.Fatalf("reply %d: got %q, want STORED", i, line)
		}
	}
	summary := <-done
	if !strings.Contains(summary, "restarts=0") {
		t.Fatalf("summary %q reports unexpected restarts", summary)
	}
	if n, err := cache.Len(); err != nil || n != burst {
		t.Fatalf("cache holds %d items (err=%v), want %d — drained commands were dropped", n, err, burst)
	}
	if err := shutdown(srv, cache, nil, nil); !strings.Contains(err, "done") {
		t.Fatalf("second shutdown not idempotent: %q", err)
	}
}
