package clobbernvm_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	clobbernvm "clobbernvm"
)

func TestCreateRunRecoverCycle(t *testing.T) {
	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 1 << 24, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	counter := db.Pool().RootSlot(2)
	db.Register("incr", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		m.Store64(counter, m.Load64(counter)+args.Uint64(0))
		return nil
	})
	for i := 0; i < 10; i++ {
		if err := db.Run(0, "incr", clobbernvm.NewArgs().PutUint64(3)); err != nil {
			t.Fatal(err)
		}
	}
	var got uint64
	if err := db.RunRO(0, func(m clobbernvm.Mem) error {
		got = m.Load64(counter)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("counter = %d, want 30", got)
	}
	if s := db.Stats(); s.Committed != 10 {
		t.Fatalf("Committed = %d", s.Committed)
	}
}

func TestSaveImageOpenRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.img")

	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	counter := db.Pool().RootSlot(2)
	incr := func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		m.Store64(counter, m.Load64(counter)+1)
		return nil
	}
	db.Register("incr", incr)
	for i := 0; i < 5; i++ {
		if err := db.Run(0, "incr", clobbernvm.NoArgs); err != nil {
			t.Fatal(err)
		}
	}

	// Crash mid-transaction, then save the durable image (what a DAX file
	// would contain after the power loss).
	db.Pool().ScheduleCrash(1)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); !ok || !errors.Is(err, clobbernvm.ErrCrash) {
					panic(r)
				}
			}
		}()
		_ = db.Run(0, "incr", clobbernvm.NoArgs)
	}()
	db.Pool().Crash()
	if err := db.SaveImage(path); err != nil {
		t.Fatal(err)
	}

	db2, err := clobbernvm.Open(path, clobbernvm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2.Register("incr", incr) // same function, new process
	n, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := db2.RunRO(0, func(m clobbernvm.Mem) error {
		got = db2.Pool().Load64(db2.Pool().RootSlot(2))
		_ = m
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := uint64(5 + n) // recovered transaction (if begun) re-executed
	if got != want {
		t.Fatalf("counter = %d, want %d (recovered=%d)", got, want, n)
	}
}

func TestNewStoreKinds(t *testing.T) {
	for _, kind := range []clobbernvm.StructureKind{
		clobbernvm.HashMapKind, clobbernvm.SkipListKind, clobbernvm.RBTreeKind,
		clobbernvm.BPTreeKind, clobbernvm.AVLTreeKind,
	} {
		t.Run(string(kind), func(t *testing.T) {
			db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 1 << 24})
			if err != nil {
				t.Fatal(err)
			}
			s, err := db.NewStore(kind, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("key-%04d", i))
				if err := s.Insert(0, key, []byte("value")); err != nil {
					t.Fatal(err)
				}
			}
			if n, err := s.Len(0); err != nil || n != 50 {
				t.Fatalf("Len = %d (err %v)", n, err)
			}
			v, found, err := s.Get(0, []byte("key-0007"))
			if err != nil || !found || string(v) != "value" {
				t.Fatalf("Get = %q %v %v", v, found, err)
			}
		})
	}
}

func TestNewStoreBadSlot(t *testing.T) {
	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewStore(clobbernvm.HashMapKind, 0); err == nil {
		t.Fatal("reserved slot accepted")
	}
	if _, err := db.NewStore(clobbernvm.StructureKind("bogus"), 5); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestAttachAfterInProcessCrash(t *testing.T) {
	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	cell := db.Pool().RootSlot(3)
	fn := func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		m.Store64(cell, m.Load64(cell)+args.Uint64(0))
		return nil
	}
	db.Register("add", fn)
	if err := db.Run(0, "add", clobbernvm.NewArgs().PutUint64(7)); err != nil {
		t.Fatal(err)
	}
	db.Pool().Crash()
	db2, err := clobbernvm.Attach(db.Pool())
	if err != nil {
		t.Fatal(err)
	}
	db2.Register("add", fn)
	if _, err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := db2.Pool().Load64(cell); got != 7 {
		t.Fatalf("cell = %d", got)
	}
}
