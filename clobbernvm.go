// Package clobbernvm is a Go reproduction of Clobber-NVM (Xu, Izraelevitz,
// Swanson — ASPLOS 2021): a failure-atomicity library for non-volatile
// memory that logs less and re-executes more.
//
// Clobber logging undo-logs only the *clobbered inputs* of a transaction —
// values that are read and then overwritten inside it — plus a per-thread
// v_log holding the transaction's volatile inputs (its function name and
// arguments). After a power failure, recovery restores the clobbered and
// volatile inputs and re-executes the interrupted transaction from the
// beginning; everything else the crash tore is overwritten by the
// deterministic re-execution.
//
// Because Go exposes neither cache-flush instructions nor LLVM passes, this
// reproduction runs over a simulated persistent-memory pool (with an
// explicit flush/fence cost model and crash injection) and detects clobber
// writes dynamically at the transactional memory interface. DESIGN.md
// documents every substitution.
//
// # Quick start
//
//	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 64 << 20})
//	if err != nil { ... }
//	counter := db.Pool().RootSlot(2)
//	db.Register("incr", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
//		m.Store64(counter, m.Load64(counter)+args.Uint64(0))
//		return nil
//	})
//	err = db.Run(0, "incr", clobbernvm.NewArgs().PutUint64(5))
//
// After a crash, reopen the pool image, Register the same functions, and
// call Recover: interrupted transactions re-execute to completion.
//
// The library also ships the paper's full evaluation stack: the comparison
// engines (PMDK-style undo, Mnemosyne-style redo, Atlas, an iDO meter), the
// four data-structure benchmarks, the three applications (memcached,
// vacation, yada), and harness runners for every figure — see the
// examples/ directory and cmd/benchfigs.
package clobbernvm

import (
	"errors"
	"fmt"

	"clobbernvm/internal/clobber"
	"clobbernvm/internal/nvm"
	"clobbernvm/internal/pds"
	"clobbernvm/internal/pmem"
	"clobbernvm/internal/txn"
)

// Re-exported core types. Mem is the in-transaction view of persistent
// memory; TxFunc is a registered, deterministic transaction body; Args
// carries a transaction's volatile inputs (preserved in the v_log).
type (
	// Mem is the transactional memory interface.
	Mem = txn.Mem
	// Args is the encodable argument list for a transaction.
	Args = txn.Args
	// TxFunc is a registered transaction function.
	TxFunc = txn.TxFunc
	// Engine is the failure-atomicity engine interface.
	Engine = txn.Engine
	// Addr is a persistent-memory address (byte offset into the pool).
	Addr = txn.Addr
	// Pool is the simulated NVM pool.
	Pool = nvm.Pool
	// Latency is the simulated flush/fence cost model.
	Latency = nvm.Latency
	// Store is the persistent key-value structure interface.
	Store = pds.Store
	// RecoveryReport itemises what RecoverReport did per category.
	RecoveryReport = txn.RecoveryReport
)

// NewArgs returns an empty argument list.
func NewArgs() *Args { return txn.NewArgs() }

// NoArgs is a reusable empty argument list.
var NoArgs = txn.NoArgs

// ErrCrash is the panic value raised at a scheduled simulated crash point.
var ErrCrash = nvm.ErrCrash

// ErrCorruptLog marks a slot whose persistent log failed validation during
// recovery; the slot is quarantined rather than partially restored.
var ErrCorruptLog = txn.ErrCorruptLog

// ErrSlotQuarantined is returned by Run on a slot that recovery quarantined.
var ErrSlotQuarantined = txn.ErrSlotQuarantined

// DefaultLatency is the calibrated simulated cost model.
var DefaultLatency = nvm.DefaultLatency

// Options configures Create and Open.
type Options struct {
	// PoolSize is the simulated NVM pool size in bytes (default 64 MiB).
	PoolSize uint64
	// Slots is the number of concurrent worker slots (default 8).
	Slots int
	// Latency enables the simulated flush/fence cost model. Zero (the
	// default) disables simulated delays; pass DefaultLatency for
	// benchmark-grade behaviour.
	Latency Latency
	// DataLogCap bounds a single transaction's clobber_log bytes
	// (default 1 MiB).
	DataLogCap uint64
	// Conservative disables the dependency-analysis refinements (the
	// Figure 13 ablation).
	Conservative bool
	// LineLog formats the clobber_log with the in-cache-line
	// write-combined layout: entries stream through 64-byte lines that
	// each carry a validity word, so a small append costs one line flush
	// instead of separate header/trailer/terminator flushes. Open
	// auto-detects the format, so the flag only matters at Create.
	LineLog bool
}

func (o *Options) fill() {
	if o.PoolSize == 0 {
		o.PoolSize = 64 << 20
	}
	if o.Slots == 0 {
		o.Slots = 8
	}
	if o.DataLogCap == 0 {
		o.DataLogCap = 1 << 20
	}
}

// DB is an open Clobber-NVM pool: the simulated NVM region, its persistent
// heap, and the clobber-logging engine.
type DB struct {
	pool   *nvm.Pool
	alloc  *pmem.Allocator
	engine *clobber.Engine
}

// Create provisions a fresh in-memory pool and formats the heap and engine
// on it.
func Create(opts Options) (*DB, error) {
	opts.fill()
	pool := nvm.New(opts.PoolSize, nvm.WithLatency(opts.Latency))
	return createOn(pool, opts)
}

func createOn(pool *nvm.Pool, opts Options) (*DB, error) {
	alloc, err := pmem.Create(pool)
	if err != nil {
		return nil, err
	}
	engine, err := clobber.Create(pool, alloc, clobber.Options{
		Slots:        opts.Slots,
		DataLogCap:   opts.DataLogCap,
		Conservative: opts.Conservative,
		LineLog:      opts.LineLog,
	})
	if err != nil {
		return nil, err
	}
	return &DB{pool: pool, alloc: alloc, engine: engine}, nil
}

// Open attaches to a pool image previously written with SaveImage (the
// restart-after-crash path). Register your transaction functions, then call
// Recover before running new transactions.
func Open(path string, opts Options) (*DB, error) {
	opts.fill()
	pool, err := nvm.OpenImage(path, nvm.WithLatency(opts.Latency))
	if err != nil {
		return nil, err
	}
	return attachTo(pool)
}

// Attach reopens the engine on a pool already containing one (e.g. after a
// simulated in-process crash via Pool().Crash()).
func Attach(pool *Pool) (*DB, error) {
	return attachTo(pool)
}

func attachTo(pool *nvm.Pool) (*DB, error) {
	alloc, err := pmem.Attach(pool)
	if err != nil {
		return nil, err
	}
	engine, err := clobber.Attach(pool, alloc, clobber.Options{})
	if err != nil {
		return nil, err
	}
	return &DB{pool: pool, alloc: alloc, engine: engine}, nil
}

// Pool exposes the underlying simulated NVM pool (root slots, crash
// injection, statistics).
func (db *DB) Pool() *Pool { return db.pool }

// Engine exposes the underlying clobber engine (it satisfies Engine and the
// structure constructors' requirements).
func (db *DB) Engine() *clobber.Engine { return db.engine }

// Register associates a name with a transaction function. All functions
// must be re-registered after Open/Attach and before Recover.
func (db *DB) Register(name string, fn TxFunc) { db.engine.Register(name, fn) }

// Run executes the named transaction failure-atomically on a worker slot.
func (db *DB) Run(slot int, name string, args *Args) error {
	return db.engine.Run(slot, name, args)
}

// RunRO executes a read-only operation (no logging, direct reads).
func (db *DB) RunRO(slot int, fn func(Mem) error) error {
	return db.engine.RunRO(slot, fn)
}

// Recover completes interrupted transactions by re-execution. Call it after
// Open/Attach (and after Register), before any new Run.
func (db *DB) Recover() (int, error) { return db.engine.Recover() }

// RecoverReport is Recover with a full accounting: how many slots were
// recovered, re-executed or quarantined, and the per-slot corruption
// errors. Corrupt logs quarantine their slot (Run returns
// ErrSlotQuarantined there) instead of failing recovery outright.
func (db *DB) RecoverReport() (RecoveryReport, error) { return db.engine.RecoverReport() }

// SaveImage persists the pool's durable view to a file, to be reopened with
// Open.
func (db *DB) SaveImage(path string) error { return db.pool.SaveImage(path) }

// StructureKind selects a persistent data structure for NewStore.
type StructureKind string

// Available structure kinds.
const (
	HashMapKind  StructureKind = "hashmap"
	SkipListKind StructureKind = "skiplist"
	RBTreeKind   StructureKind = "rbtree"
	BPTreeKind   StructureKind = "bptree"
	AVLTreeKind  StructureKind = "avltree"
)

// NewStore opens (creating if absent) a persistent key-value structure of
// the given kind anchored at the pool root slot. Root slots 0 and 1 are
// reserved for the allocator and the engine; use 2 and up.
func (db *DB) NewStore(kind StructureKind, rootSlot int) (Store, error) {
	if rootSlot < 2 || rootSlot >= nvm.NumRootSlots {
		return nil, fmt.Errorf("clobbernvm: root slot %d out of range [2, %d)", rootSlot, nvm.NumRootSlots)
	}
	switch kind {
	case HashMapKind:
		return pds.NewHashMap(db.engine, rootSlot)
	case SkipListKind:
		return pds.NewSkipList(db.engine, rootSlot)
	case RBTreeKind:
		return pds.NewRBTree(db.engine, rootSlot)
	case BPTreeKind:
		return pds.NewBPTree(db.engine, rootSlot)
	case AVLTreeKind:
		return pds.NewAVLTree(db.engine, rootSlot)
	default:
		return nil, errors.New("clobbernvm: unknown structure kind " + string(kind))
	}
}

// Stats returns the engine's logging statistics snapshot.
func (db *DB) Stats() txn.StatsSnapshot { return db.engine.Stats().Snapshot() }
