// Quickstart: the minimal Clobber-NVM program — a persistent counter and a
// persistent linked list, with a simulated crash and recovery in between.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	clobbernvm "clobbernvm"
)

func main() {
	// A DB bundles the simulated NVM pool, its persistent heap, and the
	// clobber-logging engine.
	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Pool root slots anchor your persistent data (slots 0 and 1 belong to
	// the allocator and the engine).
	counter := db.Pool().RootSlot(2)

	// A transaction is a registered, deterministic function of persistent
	// memory plus its arguments. Reading the counter and then overwriting
	// it makes it a clobbered input — the ONLY thing clobber logging
	// records here.
	db.Register("add", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		m.Store64(counter, m.Load64(counter)+args.Uint64(0))
		return nil
	})

	for i := 0; i < 5; i++ {
		if err := db.Run(0, "add", clobbernvm.NewArgs().PutUint64(10)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("counter after 5 committed transactions: %d\n", db.Pool().Load64(counter))

	// Crash the machine in the middle of the next transaction: the begin
	// record reaches the v_log, the store to the counter happens, but
	// nothing downstream was flushed.
	db.Pool().ScheduleCrash(12)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, clobbernvm.ErrCrash) {
					fmt.Println("power failure mid-transaction!")
					return
				}
				panic(r)
			}
		}()
		_ = db.Run(0, "add", clobbernvm.NewArgs().PutUint64(10))
	}()
	db.Pool().Crash()

	// Restart: attach, re-register, recover. The interrupted transaction
	// re-executes from its v_log record.
	db2, err := clobbernvm.Attach(db.Pool())
	if err != nil {
		log.Fatal(err)
	}
	db2.Register("add", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		m.Store64(counter, m.Load64(counter)+args.Uint64(0))
		return nil
	})
	n, err := db2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d transaction(s); counter is now %d\n",
		n, db2.Pool().Load64(counter))

	// The engine statistics show the paper's headline property: one v_log
	// entry and one clobber_log entry per transaction for this workload.
	s := db2.Stats()
	fmt.Printf("stats: committed=%d clobber_log entries=%d v_log entries=%d\n",
		s.Committed, s.LogEntries, s.VLogEntries)
}
