// compilerpass: the paper's two halves meeting — run the static
// clobber-write identification (§4.4) over the list-insert transaction from
// Figure 2, then execute the equivalent transaction on the runtime engine
// and show that the static instrumentation plan predicts the runtime
// clobber_log exactly: one site, one entry per insert.
//
//	go run ./examples/compilerpass
package main

import (
	"fmt"
	"log"

	clobbernvm "clobbernvm"
	"clobbernvm/internal/analysis"
)

func main() {
	// --- static side: the compiler pass ---------------------------------
	f := analysis.ListInsert()
	fmt.Println("STATIC: compiler pass over Figure 2's list insertion")
	fmt.Println(analysis.Explain(f))

	res := analysis.Analyze(f)
	plannedSites := len(res.RefinedSites())

	// --- dynamic side: the runtime engine --------------------------------
	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	head := db.Pool().RootSlot(2)
	db.Register("list_ins", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
		val := args.Bytes(0)
		n, err := m.Alloc(16 + uint64(len(val)))
		if err != nil {
			return err
		}
		m.Store(n+16, val)             // n->val = strcpy(v)
		m.Store64(n+8, m.Load64(head)) // n->nxt = lst->hd
		m.Store64(head, n)             // lst->hd = n  <- the clobber write
		return nil
	})

	const inserts = 100
	for i := 0; i < inserts; i++ {
		if err := db.Run(0, "list_ins",
			clobbernvm.NewArgs().PutBytes([]byte(fmt.Sprintf("value-%03d", i)))); err != nil {
			log.Fatal(err)
		}
	}
	s := db.Stats()
	fmt.Printf("DYNAMIC: %d inserts executed on the clobber engine\n", inserts)
	fmt.Printf("  clobber_log entries: %d (%.2f per transaction)\n",
		s.LogEntries, float64(s.LogEntries)/inserts)
	fmt.Printf("  v_log entries:       %d (1 per transaction)\n", s.VLogEntries)

	perTx := float64(s.LogEntries) / inserts
	fmt.Println()
	if int(perTx+0.5) == plannedSites {
		fmt.Printf("MATCH: the static plan (%d site) predicts the runtime logging (%.0f entry/tx)\n",
			plannedSites, perTx)
	} else {
		fmt.Printf("MISMATCH: plan %d sites vs %.2f entries/tx\n", plannedSites, perTx)
	}
}
