// vacation: the STAMP travel-agency benchmark (§5.7) as an application of
// the library — multi-table transactions, a consistency audit, and the
// rbtree-vs-avltree comparison of Figure 11.
//
//	go run ./examples/vacation
package main

import (
	"fmt"
	"log"
	"time"

	"clobbernvm/internal/harness"
	"clobbernvm/internal/vacation"
)

func main() {
	const (
		records = 500
		tasks   = 3000
		queries = 4
	)
	for _, kind := range []vacation.TreeKind{vacation.RBTreeTables, vacation.AVLTreeTables} {
		sc := harness.SmallScale
		sc.PoolBytes = 256 << 20
		setup, err := harness.NewSetup(harness.EngineClobber, sc)
		if err != nil {
			log.Fatal(err)
		}
		mgr, err := vacation.New(setup.Engine, 34, kind)
		if err != nil {
			log.Fatal(err)
		}
		if err := mgr.Populate(0, records, 1); err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		for _, task := range vacation.GenTasks(tasks, queries, records, 2) {
			if err := mgr.RunTask(0, task); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)

		// The books must balance: every booked seat is held by exactly one
		// customer and every bill equals the sum of its reservations.
		if err := mgr.CheckConsistency(0); err != nil {
			log.Fatalf("%s: consistency audit failed: %v", kind, err)
		}

		s := setup.Engine.Stats().Snapshot()
		fmt.Printf("%-8s %5d tasks in %7.1f ms (%6.0f tasks/s)  clobber entries=%d v_log entries=%d  books balance ✓\n",
			kind, tasks, elapsed.Seconds()*1000,
			float64(tasks)/elapsed.Seconds(), s.LogEntries, s.VLogEntries)
	}
}
