// kvstore: drive the paper's four persistent data structures through the
// public API with a YCSB-style workload and compare the engines' logging
// behaviour — a miniature of Figures 6 and 7.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	clobbernvm "clobbernvm"
)

const (
	entries  = 3000
	rootSlot = 4
)

func main() {
	kinds := []clobbernvm.StructureKind{
		clobbernvm.BPTreeKind, clobbernvm.HashMapKind,
		clobbernvm.SkipListKind, clobbernvm.RBTreeKind,
	}
	fmt.Printf("%-10s %10s %16s %16s\n", "structure", "ops/s", "clobber entries", "v_log entries")
	for _, kind := range kinds {
		db, err := clobbernvm.Create(clobbernvm.Options{
			PoolSize: 256 << 20,
			Latency:  clobbernvm.DefaultLatency,
		})
		if err != nil {
			log.Fatal(err)
		}
		store, err := db.NewStore(kind, rootSlot)
		if err != nil {
			log.Fatal(err)
		}

		value := make([]byte, 256)
		start := time.Now()
		for i := 0; i < entries; i++ {
			key := []byte(fmt.Sprintf("user%012d", i*2654435761%entries_space))
			if err := store.Insert(0, key, value); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)

		// Point lookups.
		hits := 0
		for i := 0; i < 500; i++ {
			key := []byte(fmt.Sprintf("user%012d", i*2654435761%entries_space))
			if _, found, err := store.Get(0, key); err != nil {
				log.Fatal(err)
			} else if found {
				hits++
			}
		}
		if hits == 0 {
			log.Fatalf("%s: lookups found nothing", kind)
		}

		s := db.Stats()
		fmt.Printf("%-10s %10.0f %16d %16d\n", kind,
			float64(entries)/elapsed.Seconds(), s.LogEntries, s.VLogEntries)
	}
}

// entries_space spreads the multiplicative-hash keys.
const entries_space = 1 << 30
