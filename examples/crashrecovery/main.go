// crashrecovery: a bank-transfer ledger that survives a power failure at
// EVERY possible store. The example sweeps the crash point across the whole
// transfer transaction and verifies, for each crash, that the invariant
// "total balance is conserved" holds after recovery — the all-or-nothing
// guarantee the paper's library exists to provide.
//
//	go run ./examples/crashrecovery
package main

import (
	"errors"
	"fmt"
	"log"

	clobbernvm "clobbernvm"
)

const accounts = 8

func main() {
	crashes, recoveries := 0, 0
	for crashAt := int64(1); crashAt <= 60; crashAt++ {
		fired, recovered := trial(crashAt)
		if fired {
			crashes++
			recoveries += recovered
		} else {
			// The transfer finished in fewer stores than crashAt: the
			// sweep has covered the whole transaction.
			fmt.Printf("swept every store ordinal: %d crashes injected, %d transactions re-executed\n",
				crashes, recoveries)
			fmt.Println("balance conserved after every single one — all-or-nothing holds")
			return
		}
	}
	fmt.Printf("%d crashes injected, %d transactions re-executed, invariant held\n",
		crashes, recoveries)
}

// trial sets up the ledger, injects one crash at the given store ordinal
// during a transfer, recovers, and checks conservation.
func trial(crashAt int64) (fired bool, recovered int) {
	db, err := clobbernvm.Create(clobbernvm.Options{PoolSize: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	// The ledger: a fixed array of balances at root slot 2.
	ledger := db.Pool().RootSlot(2)
	register := func(d *clobbernvm.DB) {
		d.Register("init", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
			arr, err := m.Alloc(accounts * 8)
			if err != nil {
				return err
			}
			for i := uint64(0); i < accounts; i++ {
				m.Store64(arr+i*8, 1000)
			}
			m.Store64(ledger, arr)
			return nil
		})
		d.Register("transfer", func(m clobbernvm.Mem, args *clobbernvm.Args) error {
			from, to, amount := args.Uint64(0), args.Uint64(1), args.Uint64(2)
			arr := m.Load64(ledger)
			a := m.Load64(arr + from*8)
			b := m.Load64(arr + to*8)
			if a < amount {
				return nil
			}
			// Both balances are clobbered inputs: read above, overwritten
			// here. A torn pair is exactly what a crash could produce
			// without the library.
			m.Store64(arr+from*8, a-amount)
			m.Store64(arr+to*8, b+amount)
			return nil
		})
	}
	register(db)
	if err := db.Run(0, "init", clobbernvm.NoArgs); err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if err := db.Run(0, "transfer",
			clobbernvm.NewArgs().PutUint64(i%accounts).PutUint64((i+3)%accounts).PutUint64(50)); err != nil {
			log.Fatal(err)
		}
	}

	db.Pool().ScheduleCrash(crashAt)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, clobbernvm.ErrCrash) {
					fired = true
					return
				}
				panic(r)
			}
		}()
		_ = db.Run(0, "transfer", clobbernvm.NewArgs().PutUint64(1).PutUint64(2).PutUint64(500))
	}()
	if !fired {
		return false, 0
	}

	db.Pool().Crash()
	db2, err := clobbernvm.Attach(db.Pool())
	if err != nil {
		log.Fatal(err)
	}
	register(db2)
	n, err := db2.Recover()
	if err != nil {
		log.Fatal(err)
	}

	// Invariant: money is conserved.
	var total uint64
	arr := db2.Pool().Load64(ledger)
	for i := uint64(0); i < accounts; i++ {
		total += db2.Pool().Load64(arr + i*8)
	}
	if total != accounts*1000 {
		log.Fatalf("crash@%d: ledger total %d != %d — money vanished!",
			crashAt, total, accounts*1000)
	}
	return true, n
}
